#include "src/core/op_dispatch.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/kernels/batchnorm.h"
#include "src/kernels/conv_im2col.h"
#include "src/kernels/conv_nchwc.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/dense.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/multibox.h"
#include "src/kernels/pooling.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

Tensor ExecuteConv(const Node& node, const std::vector<Tensor>& in, ThreadEngine* engine) {
  const Conv2dParams& p = node.attrs.conv;
  const ConvEpilogue& epi = node.attrs.epilogue;
  const Tensor* bias = epi.bias ? &in[2] : nullptr;
  const Tensor* residual = epi.residual_add ? &in.back() : nullptr;
  switch (node.attrs.kernel) {
    case ConvKernelKind::kDirectNCHW: {
      Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
      ConvRefNCHW(p, in[0], in[1], bias, residual, epi, &out, engine);
      return out;
    }
    case ConvKernelKind::kIm2col: {
      Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
      ConvIm2col(p, in[0], in[1], bias, residual, epi, &out, engine);
      return out;
    }
    case ConvKernelKind::kNCHWc: {
      const ConvSchedule& s = node.attrs.schedule;
      Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                                 Layout::NCHWc(s.oc_bn));
      ConvNCHWc(p, s, in[0], in[1], bias, residual, epi, &out, engine);
      return out;
    }
  }
  LOG(FATAL) << "unreachable";
  return {};
}

Tensor ConcatFlat(const std::vector<Tensor>& in) {
  // Concatenate {N, C_i} (or flat {C_i}) tensors along the last axis.
  const std::int64_t rows = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
  std::int64_t total_cols = 0;
  for (const Tensor& t : in) {
    total_cols += t.NumElements() / rows;
  }
  Tensor out = Tensor::Empty({rows, total_cols}, Layout::Flat());
  std::int64_t col_off = 0;
  for (const Tensor& t : in) {
    const std::int64_t cols = t.NumElements() / rows;
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(out.data() + r * total_cols + col_off, t.data() + r * cols,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
    col_off += cols;
  }
  return out;
}

}  // namespace

Tensor ExecuteNode(const Node& node, const std::vector<Tensor>& in, ThreadEngine* engine) {
  switch (node.type) {
    case OpType::kInput:
    case OpType::kConstant:
      LOG(FATAL) << "inputs/constants are resolved by the executor, not dispatched";
      return {};
    case OpType::kConv2d:
      return ExecuteConv(node, in, engine);
    case OpType::kBatchNorm: {
      // Reference (unsimplified) execution: fold the statistics on the fly.
      Tensor scale, shift;
      ComputeBnScaleShift(in[1], in[2], in[3], in[4], node.attrs.epsilon, &scale, &shift);
      return in[0].ndim() == 5 ? ScaleShiftNCHWc(in[0], scale, shift, false, engine)
                               : ScaleShiftNCHW(in[0], scale, shift, false, engine);
    }
    case OpType::kScaleShift:
      return in[0].ndim() == 5
                 ? ScaleShiftNCHWc(in[0], in[1], in[2], node.attrs.relu, engine)
                 : ScaleShiftNCHW(in[0], in[1], in[2], node.attrs.relu, engine);
    case OpType::kRelu:
      return Relu(in[0], engine);
    case OpType::kMaxPool:
    case OpType::kAvgPool:
      return in[0].ndim() == 5 ? PoolNCHWc(node.attrs.pool, in[0], engine)
                               : PoolNCHW(node.attrs.pool, in[0], engine);
    case OpType::kGlobalAvgPool:
      return in[0].ndim() == 5 ? GlobalAvgPoolNCHWc(in[0], engine)
                               : GlobalAvgPoolNCHW(in[0], engine);
    case OpType::kDense:
      return Dense(in[0], in[1], in.size() > 2 ? &in[2] : nullptr, node.attrs.relu, engine);
    case OpType::kSoftmax:
      return Softmax(in[0], engine);
    case OpType::kElemAdd:
      return AddElementwise(in[0], in[1], node.attrs.relu, engine);
    case OpType::kConcat:
      return in[0].ndim() >= 4 ? ConcatChannels(in, engine) : ConcatFlat(in);
    case OpType::kFlatten:
      return FlattenNCHW(in[0]);
    case OpType::kFlattenNHWC: {
      Tensor nhwc = NCHWToNHWC(in[0], engine);
      return nhwc.Reshaped({in[0].dim(0), in[0].dim(1) * in[0].dim(2) * in[0].dim(3)},
                           Layout::Flat());
    }
    case OpType::kReshape: {
      const auto& dims = node.attrs.reshape_dims;
      return in[0].Reshaped(dims, dims.size() == 4 ? Layout::NCHW() : Layout::Flat());
    }
    case OpType::kDropout:
      return in[0];  // identity at inference
    case OpType::kLayoutTransform:
      return TransformLayout(in[0], node.attrs.dst_layout, engine);
    case OpType::kMultiboxDetection:
      return MultiboxDetection(node.attrs.det, in[0], in[1], in[2], engine);
  }
  LOG(FATAL) << "unreachable";
  return {};
}

}  // namespace neocpu
