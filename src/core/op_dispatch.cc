#include "src/core/op_dispatch.h"

#include <cstring>
#include <thread>

#include "src/base/logging.h"
#include "src/kernels/batchnorm.h"
#include "src/kernels/conv_im2col.h"
#include "src/kernels/conv_nchwc.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/conv_winograd.h"
#include "src/kernels/dense.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/gemm_packed.h"
#include "src/kernels/gemm_packed_int8.h"
#include "src/kernels/transformer.h"
#include "src/kernels/multibox.h"
#include "src/kernels/pooling.h"
#include "src/kernels/quantize.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

// f32 staging bytes for a conv's fused integer residual (0 when it has none): the
// dequantized residual is materialized here rather than heap-allocated so the planned
// executor stays zero-alloc. 64-byte aligned so kernel scratch that follows it in the
// shared workspace keeps SIMD alignment.
std::size_t ResidualStagingBytes(const Node& node) {
  if (node.type != OpType::kConv2d || !node.attrs.epilogue.residual_add ||
      node.attrs.qin_scales.empty()) {
    return 0;
  }
  std::int64_t elems = 1;
  for (std::int64_t d : node.out_dims) {
    elems *= d;
  }
  return (static_cast<std::size_t>(elems) * sizeof(float) + 63) & ~std::size_t{63};
}

// Runs the convolution kernel bound to `node` writing into the preallocated `*out`;
// `workspace` backs kernel scratch — the im2col column buffer or Winograd's per-worker
// tile buffers (null on the allocating path, which lets the kernels self-allocate) —
// prefixed by the fused-residual staging region when ResidualStagingBytes > 0.
void ExecuteConvInto(const Node& node, const std::vector<Tensor>& in, Tensor* out,
                     float* workspace, std::size_t workspace_bytes, ThreadEngine* engine) {
  const Conv2dParams& p = node.attrs.conv;
  const ConvEpilogue& epi = node.attrs.epilogue;
  const Tensor* bias = epi.bias ? &in[2] : nullptr;
  const Tensor* residual = epi.residual_add ? &in.back() : nullptr;
  Tensor residual_f32;
  if (residual != nullptr && residual->dtype() != DType::kF32) {
    // Fused integer residual (QuantizeGraph's sum fusion): the producer stayed in the
    // integer domain for its other consumers; this conv rescales the codes back to
    // f32 on the way into its epilogue add.
    const std::size_t staging = ResidualStagingBytes(node);
    if (workspace != nullptr && staging > 0 && workspace_bytes >= staging) {
      residual_f32 = Tensor::FromExternal(workspace, residual->dims(),
                                          residual->layout(), DType::kF32);
      workspace += staging / sizeof(float);
      workspace_bytes -= staging;
      if (workspace_bytes == 0) {
        workspace = nullptr;
      }
      Dequantize(*residual, node.attrs.qin_scales.at(0), node.attrs.qin_zeros.at(0),
                 &residual_f32, engine);
    } else {
      residual_f32 = Dequantize(*residual, node.attrs.qin_scales.at(0),
                                node.attrs.qin_zeros.at(0), engine);
    }
    residual = &residual_f32;
  }
  switch (node.attrs.kernel) {
    case ConvKernelKind::kDirectNCHW:
      ConvRefNCHW(p, in[0], in[1], bias, residual, epi, out, engine);
      return;
    case ConvKernelKind::kIm2col:
      ConvIm2col(p, in[0], in[1], bias, residual, epi, out, engine, workspace);
      return;
    case ConvKernelKind::kNCHWc:
      ConvNCHWc(p, node.attrs.schedule, in[0], in[1], bias, residual, epi, out, engine);
      return;
    case ConvKernelKind::kWinograd:
      ConvWinograd(p, in[0], in[1], bias, epi, out, engine, workspace,
                   workspace_bytes / sizeof(float));
      return;
    case ConvKernelKind::kNCHWcS8:
      // Inputs: {data s8/u8, weight s8, [bias s32], multiplier f32} — the multiplier is
      // always the last input; residual epilogues are illegal in int8.
      ConvNCHWcS8(p, node.attrs.schedule, in[0], in[1], bias, in.back(), epi,
                  node.attrs.qconv.requant, out, engine, node.attrs.qconv.out_zero,
                  node.attrs.qconv.in_zero);
      return;
  }
  LOG(FATAL) << "unreachable";
}

Tensor ExecuteConv(const Node& node, const std::vector<Tensor>& in, ThreadEngine* engine) {
  const Conv2dParams& p = node.attrs.conv;
  Tensor out;
  if (node.attrs.kernel == ConvKernelKind::kNCHWc) {
    const ConvSchedule& s = node.attrs.schedule;
    out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                        Layout::NCHWc(s.oc_bn));
  } else if (node.attrs.kernel == ConvKernelKind::kNCHWcS8) {
    const ConvSchedule& s = node.attrs.schedule;
    out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                        Layout::NCHWc(s.oc_bn),
                        node.attrs.qconv.requant ? node.attrs.qconv.out_dtype
                                                 : DType::kF32);
  } else {
    out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  }
  ExecuteConvInto(node, in, &out, nullptr, 0, engine);
  return out;
}

// Concatenate {N, C_i} (or flat {C_i}) tensors along the last axis into `*out`.
void ConcatFlatInto(const std::vector<Tensor>& in, Tensor* out) {
  const std::int64_t rows = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
  std::int64_t total_cols = 0;
  for (const Tensor& t : in) {
    total_cols += t.NumElements() / rows;
  }
  NEOCPU_CHECK(out != nullptr && out->defined());
  NEOCPU_CHECK_EQ(out->NumElements(), rows * total_cols)
      << "flat concat output mismatch: " << out->DebugString();
  std::int64_t col_off = 0;
  for (const Tensor& t : in) {
    const std::int64_t cols = t.NumElements() / rows;
    for (std::int64_t r = 0; r < rows; ++r) {
      std::memcpy(out->data() + r * total_cols + col_off, t.data() + r * cols,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
    col_off += cols;
  }
}

Tensor ConcatFlat(const std::vector<Tensor>& in) {
  const std::int64_t rows = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
  std::int64_t total_cols = 0;
  for (const Tensor& t : in) {
    total_cols += t.NumElements() / rows;
  }
  Tensor out = Tensor::Empty({rows, total_cols}, Layout::Flat());
  ConcatFlatInto(in, &out);
  return out;
}

// Tuned packed-GEMM dense (attrs.has_gemm): the weight input is the pre-packed panel
// constant; `workspace` (when the planned executor provides one) backs the packed-A
// panels so the steady state allocates nothing.
void ExecuteDenseGemmInto(const Node& node, const std::vector<Tensor>& in, Tensor* out,
                          float* workspace, std::size_t workspace_bytes,
                          ThreadEngine* engine) {
  const GemmSchedule& s = node.attrs.gemm;
  const DenseParams& p = node.attrs.dense;
  const std::int64_t m = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
  if (s.dtype == DType::kU8) {
    // Inputs: {data u8, packed weight s8, [bias s32], multiplier f32} (multiplier
    // last, the quantized-conv convention).
    const std::int32_t* bias = in.size() > 3 ? in[2].data_as<std::int32_t>() : nullptr;
    const bool requant = node.attrs.qconv.requant;
    const bool out_u8 = requant && node.attrs.qconv.out_dtype == DType::kU8;
    std::uint8_t* ws = nullptr;
    if (workspace != nullptr && workspace_bytes >= PackedAU8Bytes(m, p.k, s)) {
      ws = reinterpret_cast<std::uint8_t*>(workspace);
    }
    GemmPackedU8S8(m, p.n, p.k, in[0].data_as<std::uint8_t>(),
                   in[1].data_as<std::int8_t>(), bias, in.back().data(),
                   node.attrs.relu, requant, out_u8, node.attrs.qconv.out_zero,
                   static_cast<void*>(out->data()), s, ws, engine);
    return;
  }
  const float* bias = in.size() > 2 ? in[2].data() : nullptr;
  float* ws = nullptr;
  if (workspace != nullptr &&
      workspace_bytes >= PackedAF32Elems(m, p.k, s) * sizeof(float)) {
    ws = workspace;
  }
  GemmPackedF32(m, p.n, p.k, in[0].data(), in[1].data(), bias, node.attrs.relu,
                out->data(), s, ws, engine);
}

Tensor ExecuteDenseGemm(const Node& node, const std::vector<Tensor>& in,
                        ThreadEngine* engine) {
  const std::int64_t m = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
  DType out_dtype = DType::kF32;
  if (node.attrs.gemm.dtype == DType::kU8 && node.attrs.qconv.requant) {
    out_dtype = node.attrs.qconv.out_dtype;
  }
  Tensor out = Tensor::Empty({m, node.attrs.dense.n}, Layout::Flat(), out_dtype);
  ExecuteDenseGemmInto(node, in, &out, nullptr, 0, engine);
  return out;
}

}  // namespace

Tensor ExecuteNode(const Node& node, const std::vector<Tensor>& in, ThreadEngine* engine) {
  switch (node.type) {
    case OpType::kInput:
    case OpType::kConstant:
      LOG(FATAL) << "inputs/constants are resolved by the executor, not dispatched";
      return {};
    case OpType::kConv2d:
      return ExecuteConv(node, in, engine);
    case OpType::kBatchNorm: {
      // Reference (unsimplified) execution: fold the statistics on the fly.
      Tensor scale, shift;
      ComputeBnScaleShift(in[1], in[2], in[3], in[4], node.attrs.epsilon, &scale, &shift);
      return in[0].ndim() == 5 ? ScaleShiftNCHWc(in[0], scale, shift, false, engine)
                               : ScaleShiftNCHW(in[0], scale, shift, false, engine);
    }
    case OpType::kScaleShift:
      return in[0].ndim() == 5
                 ? ScaleShiftNCHWc(in[0], in[1], in[2], node.attrs.relu, engine)
                 : ScaleShiftNCHW(in[0], in[1], in[2], node.attrs.relu, engine);
    case OpType::kRelu:
      return Relu(in[0], engine);
    case OpType::kMaxPool:
    case OpType::kAvgPool:
      if (in[0].dtype() == DType::kS8 || in[0].dtype() == DType::kU8) {
        return PoolNCHWcInt(node.attrs.pool, in[0], node.attrs.qzero, engine);
      }
      return in[0].ndim() == 5 ? PoolNCHWc(node.attrs.pool, in[0], engine)
                               : PoolNCHW(node.attrs.pool, in[0], engine);
    case OpType::kGlobalAvgPool:
      return in[0].ndim() == 5 ? GlobalAvgPoolNCHWc(in[0], engine)
                               : GlobalAvgPoolNCHW(in[0], engine);
    case OpType::kDense:
      if (node.attrs.has_gemm) {
        return ExecuteDenseGemm(node, in, engine);
      }
      if (node.attrs.qconv.enabled) {
        // Inputs: {data s8, weight s8, [bias s32], multiplier f32} — same convention
        // as the quantized conv (multiplier last).
        return DenseS8(in[0], in[1], in.size() > 3 ? &in[2] : nullptr, in.back(),
                       node.attrs.relu, engine);
      }
      return Dense(in[0], in[1], in.size() > 2 ? &in[2] : nullptr, node.attrs.relu, engine);
    case OpType::kSoftmax:
      return Softmax(in[0], engine);
    case OpType::kElemAdd:
      return AddElementwise(in[0], in[1], node.attrs.relu, engine);
    case OpType::kConcat:
      if (in[0].dtype() == DType::kS8 || in[0].dtype() == DType::kU8) {
        return ConcatChannelsInt(in, node.attrs.qin_scales, node.attrs.qin_zeros,
                                 node.attrs.qscale, node.attrs.qzero, engine);
      }
      return in[0].ndim() >= 4 ? ConcatChannels(in, engine) : ConcatFlat(in);
    case OpType::kFlatten:
      return FlattenNCHW(in[0]);
    case OpType::kFlattenNHWC: {
      Tensor nhwc = NCHWToNHWC(in[0], engine);
      return nhwc.Reshaped({in[0].dim(0), in[0].dim(1) * in[0].dim(2) * in[0].dim(3)},
                           Layout::Flat());
    }
    case OpType::kReshape: {
      const auto& dims = node.attrs.reshape_dims;
      return in[0].Reshaped(dims, dims.size() == 4 ? Layout::NCHW() : Layout::Flat());
    }
    case OpType::kDropout:
      return in[0];  // identity at inference
    case OpType::kLayoutTransform:
      return TransformLayout(in[0], node.attrs.dst_layout, engine);
    case OpType::kMultiboxDetection:
      return MultiboxDetection(node.attrs.det, in[0], in[1], in[2], engine);
    case OpType::kQuantize:
      return Quantize(in[0], node.attrs.qscale, node.attrs.qzero, node.attrs.qdtype,
                      engine);
    case OpType::kDequantize:
      return Dequantize(in[0], node.attrs.qscale, node.attrs.qzero, engine);
    case OpType::kLayerNorm:
      return LayerNormRows(in[0], in[1], in[2], node.attrs.epsilon, engine);
    case OpType::kTranspose:
      return Transpose2D(in[0], engine);
    case OpType::kMultiHeadAttention:
      return MultiHeadAttention(in[0], in[1], in[2], node.attrs.heads, node.attrs.seq,
                                engine);
  }
  LOG(FATAL) << "unreachable";
  return {};
}

void ExecuteNodeInto(const Node& node, const std::vector<Tensor>& in, Tensor* out,
                     float* workspace, std::size_t workspace_bytes, ThreadEngine* engine) {
  NEOCPU_CHECK(out != nullptr && out->defined());
  switch (node.type) {
    case OpType::kConv2d:
      ExecuteConvInto(node, in, out, workspace, workspace_bytes, engine);
      return;
    case OpType::kScaleShift:
      if (in[0].ndim() == 5) {
        ScaleShiftNCHWc(in[0], in[1], in[2], node.attrs.relu, out, engine);
      } else {
        ScaleShiftNCHW(in[0], in[1], in[2], node.attrs.relu, out, engine);
      }
      return;
    case OpType::kRelu:
      Relu(in[0], out, engine);
      return;
    case OpType::kMaxPool:
    case OpType::kAvgPool:
      if (in[0].dtype() == DType::kS8 || in[0].dtype() == DType::kU8) {
        PoolNCHWcInt(node.attrs.pool, in[0], node.attrs.qzero, out, engine);
      } else if (in[0].ndim() == 5) {
        PoolNCHWc(node.attrs.pool, in[0], out, engine);
      } else {
        PoolNCHW(node.attrs.pool, in[0], out, engine);
      }
      return;
    case OpType::kGlobalAvgPool:
      if (in[0].ndim() == 5) {
        GlobalAvgPoolNCHWc(in[0], out, engine);
      } else {
        GlobalAvgPoolNCHW(in[0], out, engine);
      }
      return;
    case OpType::kDense:
      if (node.attrs.has_gemm) {
        ExecuteDenseGemmInto(node, in, out, workspace, workspace_bytes, engine);
      } else if (node.attrs.qconv.enabled) {
        DenseS8(in[0], in[1], in.size() > 3 ? &in[2] : nullptr, in.back(),
                node.attrs.relu, out, engine);
      } else {
        Dense(in[0], in[1], in.size() > 2 ? &in[2] : nullptr, node.attrs.relu, out,
              engine);
      }
      return;
    case OpType::kSoftmax:
      Softmax(in[0], out, engine);
      return;
    case OpType::kElemAdd:
      AddElementwise(in[0], in[1], node.attrs.relu, out, engine);
      return;
    case OpType::kConcat:
      if (in[0].dtype() == DType::kS8 || in[0].dtype() == DType::kU8) {
        ConcatChannelsInt(in, node.attrs.qin_scales, node.attrs.qin_zeros,
                          node.attrs.qscale, node.attrs.qzero, out, engine);
      } else if (in[0].ndim() >= 4) {
        ConcatChannels(in, out, engine);
      } else {
        ConcatFlatInto(in, out);
      }
      return;
    case OpType::kFlattenNHWC: {
      // The planner sizes the flat {N, C*H*W} output; the permutation writes straight
      // into it through an NHWC-shaped view of the same bytes.
      Tensor nhwc = Tensor::FromExternal(
          out->data(), {in[0].dim(0), in[0].dim(2), in[0].dim(3), in[0].dim(1)},
          Layout::NHWC());
      NCHWToNHWC(in[0], &nhwc, engine);
      return;
    }
    case OpType::kLayoutTransform:
      TransformLayout(in[0], node.attrs.dst_layout, out, engine);
      return;
    case OpType::kQuantize:
      Quantize(in[0], node.attrs.qscale, node.attrs.qzero, node.attrs.qdtype, out,
               engine);
      return;
    case OpType::kDequantize:
      Dequantize(in[0], node.attrs.qscale, node.attrs.qzero, out, engine);
      return;
    case OpType::kLayerNorm:
      LayerNormRows(in[0], in[1], in[2], node.attrs.epsilon, out, engine);
      return;
    case OpType::kTranspose:
      Transpose2D(in[0], out, engine);
      return;
    case OpType::kMultiHeadAttention: {
      // Workspace backs the per-(batch, head) score tiles; null (allocating path)
      // falls back to an internal buffer inside the kernel.
      const std::int64_t rows = in[0].ndim() >= 2 ? in[0].dim(0) : 1;
      float* ws = nullptr;
      if (workspace != nullptr &&
          workspace_bytes >= static_cast<std::size_t>(MhaWorkspaceFloats(
                                 rows, node.attrs.seq, node.attrs.heads)) *
                                 sizeof(float)) {
        ws = workspace;
      }
      MultiHeadAttention(in[0], in[1], in[2], node.attrs.heads, node.attrs.seq, out,
                         engine, ws);
      return;
    }
    default:
      break;
  }
  LOG(FATAL) << "ExecuteNodeInto: unsupported op " << OpTypeName(node.type) << " ("
             << node.name << ")";
}

int AliasedInput(const Node& node, const Graph& graph) {
  switch (node.type) {
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kDropout:
      return 0;
    case OpType::kLayoutTransform:
      // Identity transforms (source already in the destination layout) return their
      // input unchanged at runtime; the planner must treat them as views.
      return graph.node(node.inputs[0]).out_layout == node.attrs.dst_layout ? 0 : -1;
    default:
      return -1;
  }
}

bool SupportsExecuteInto(const Node& node, const Graph& graph) {
  switch (node.type) {
    case OpType::kInput:
    case OpType::kConstant:
    case OpType::kBatchNorm:          // reference-only: folds statistics on the fly
    case OpType::kMultiboxDetection:  // detection head allocates internally
    case OpType::kReshape:
    case OpType::kFlatten:
    case OpType::kDropout:
      return false;
    case OpType::kLayoutTransform:
      return AliasedInput(node, graph) < 0;
    default:
      return true;
  }
}

int MaxPlannedWorkers() {
  static const int workers = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return workers;
}

std::size_t NodeWorkspaceBytes(const Node& node) {
  if (node.type == OpType::kDense && node.attrs.has_gemm) {
    // Packed-A panel buffer for the tuned GEMM.
    const DenseParams& p = node.attrs.dense;
    return node.attrs.gemm.dtype == DType::kU8
               ? PackedAU8Bytes(p.m, p.k, node.attrs.gemm)
               : PackedAF32Elems(p.m, p.k, node.attrs.gemm) * sizeof(float);
  }
  if (node.type == OpType::kMultiHeadAttention) {
    // Per-(batch, head) attention score tiles.
    const std::int64_t rows = node.out_dims.size() >= 2 ? node.out_dims[0] : 1;
    return static_cast<std::size_t>(
               MhaWorkspaceFloats(rows, node.attrs.seq, node.attrs.heads)) *
           sizeof(float);
  }
  if (node.type != OpType::kConv2d) {
    return 0;
  }
  std::size_t bytes = ResidualStagingBytes(node);
  switch (node.attrs.kernel) {
    case ConvKernelKind::kIm2col:
      bytes += ConvIm2colWorkspaceBytes(node.attrs.conv);
      break;
    case ConvKernelKind::kWinograd:
      bytes += WinogradWorkspaceBytes(node.attrs.conv, MaxPlannedWorkers());
      break;
    default:
      break;
  }
  return bytes;
}

std::vector<std::int64_t> PlannedOutputDims(const Node& node) {
  if (node.out_layout.kind == LayoutKind::kNCHWc) {
    NEOCPU_CHECK_EQ(node.out_dims.size(), 4u)
        << node.name << ": blocked layout on non-4D logical shape";
    const std::int64_t x = node.out_layout.c_block;
    NEOCPU_CHECK_GT(x, 0);
    NEOCPU_CHECK_EQ(node.out_dims[1] % x, 0)
        << node.name << ": channels " << node.out_dims[1] << " not divisible by " << x;
    return {node.out_dims[0], node.out_dims[1] / x, node.out_dims[2], node.out_dims[3], x};
  }
  return node.out_dims;
}

Layout PlannedOutputLayout(const Node& node) {
  return node.out_dims.size() >= 4 ? node.out_layout : Layout::Flat();
}

}  // namespace neocpu
