// AVX-512 instantiation of the s8 NCHWc convolution row driver. Compiled with
// -mavx512f -mavx512bw -mavx512vl -mavx512dq (CMake sets the per-file flags and skips
// this TU on toolchains without them); selected at runtime only when the host CPU
// reports AVX-512BW.
#define NEOCPU_S8_VARIANT_NS s8_avx512
#define NEOCPU_S8_ROW_FN ConvS8RowAvx512
#include "src/kernels/conv_nchwc_int8_impl.h"
