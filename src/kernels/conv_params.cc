#include "src/kernels/conv_params.h"

#include <cstdio>

#include "src/base/string_util.h"

namespace neocpu {

std::string Conv2dParams::ToString() const {
  return StrFormat(
      "conv(n=%lld ic=%lld %lldx%lld oc=%lld k=%lldx%lld s=%lldx%lld p=%lldx%lld)",
      static_cast<long long>(batch), static_cast<long long>(in_c), static_cast<long long>(in_h),
      static_cast<long long>(in_w), static_cast<long long>(out_c),
      static_cast<long long>(kernel_h), static_cast<long long>(kernel_w),
      static_cast<long long>(stride_h), static_cast<long long>(stride_w),
      static_cast<long long>(pad_h), static_cast<long long>(pad_w));
}

std::string Conv2dParams::CacheKey() const {
  return StrFormat("%lld_%lld_%lldx%lld_%lld_%lldx%lld_%lldx%lld_%lldx%lld",
                   static_cast<long long>(batch), static_cast<long long>(in_c),
                   static_cast<long long>(in_h), static_cast<long long>(in_w),
                   static_cast<long long>(out_c), static_cast<long long>(kernel_h),
                   static_cast<long long>(kernel_w), static_cast<long long>(stride_h),
                   static_cast<long long>(stride_w), static_cast<long long>(pad_h),
                   static_cast<long long>(pad_w));
}

bool Conv2dParams::ParseCacheKey(const std::string& text, Conv2dParams* params) {
  Conv2dParams p;
  long long batch, in_c, in_h, in_w, out_c, kh, kw, sh, sw, ph, pw;
  if (std::sscanf(text.c_str(), "%lld_%lld_%lldx%lld_%lld_%lldx%lld_%lldx%lld_%lldx%lld",
                  &batch, &in_c, &in_h, &in_w, &out_c, &kh, &kw, &sh, &sw, &ph,
                  &pw) != 11) {
    return false;
  }
  p.batch = batch;
  p.in_c = in_c;
  p.in_h = in_h;
  p.in_w = in_w;
  p.out_c = out_c;
  p.kernel_h = kh;
  p.kernel_w = kw;
  p.stride_h = sh;
  p.stride_w = sw;
  p.pad_h = ph;
  p.pad_w = pw;
  // Round-trip check rejects anything CacheKey would not have produced (trailing
  // garbage, negatives, wrong separators).
  if (p.CacheKey() != text) {
    return false;
  }
  *params = p;
  return true;
}

}  // namespace neocpu
