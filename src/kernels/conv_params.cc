#include "src/kernels/conv_params.h"

#include "src/base/string_util.h"

namespace neocpu {

std::string Conv2dParams::ToString() const {
  return StrFormat(
      "conv(n=%lld ic=%lld %lldx%lld oc=%lld k=%lldx%lld s=%lldx%lld p=%lldx%lld)",
      static_cast<long long>(batch), static_cast<long long>(in_c), static_cast<long long>(in_h),
      static_cast<long long>(in_w), static_cast<long long>(out_c),
      static_cast<long long>(kernel_h), static_cast<long long>(kernel_w),
      static_cast<long long>(stride_h), static_cast<long long>(stride_w),
      static_cast<long long>(pad_h), static_cast<long long>(pad_w));
}

std::string Conv2dParams::CacheKey() const {
  return StrFormat("%lld_%lld_%lldx%lld_%lld_%lldx%lld_%lldx%lld_%lldx%lld",
                   static_cast<long long>(batch), static_cast<long long>(in_c),
                   static_cast<long long>(in_h), static_cast<long long>(in_w),
                   static_cast<long long>(out_c), static_cast<long long>(kernel_h),
                   static_cast<long long>(kernel_w), static_cast<long long>(stride_h),
                   static_cast<long long>(stride_w), static_cast<long long>(pad_h),
                   static_cast<long long>(pad_w));
}

}  // namespace neocpu
