// AVX2+FMA instantiation of the packed u8·s8 GEMM tile driver. Compiled with
// -mavx2 -mfma (see CMakeLists.txt); entered only after the dispatcher's cpuid check.
#define NEOCPU_GEMM_S8_VARIANT_NS gemm_s8_avx2
#define NEOCPU_GEMM_S8_TILE_FN GemmS8TileAvx2
#include "src/kernels/gemm_packed_int8_impl.h"
