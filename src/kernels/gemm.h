// Register-blocked single-precision GEMM (row-major), used by the im2col convolution
// baseline and the dense (fully-connected) layer. Deliberately library-quality but not
// schedule-searched: it stands in for the fixed vendor-library kernels the paper's
// baselines call into.
#ifndef NEOCPU_SRC_KERNELS_GEMM_H_
#define NEOCPU_SRC_KERNELS_GEMM_H_

#include <cstdint>

#include "src/runtime/thread_engine.h"

namespace neocpu {

// C[M,N] = A[M,K] * B[K,N] (+ C if accumulate). All row-major, no aliasing.
void Gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a, const float* b,
          float* c, bool accumulate = false, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_H_
