// Register-blocked single-precision GEMM (row-major), kept as the fixed-blocking
// reference the gemm_micro bench ablates against: it stands in for the vendor-library
// kernels the paper's baselines call into. Production matmul traffic (dense layers,
// the im2col column GEMM) runs on the packed, schedule-searched family in
// gemm_packed.h / gemm_packed_int8.h instead.
#ifndef NEOCPU_SRC_KERNELS_GEMM_H_
#define NEOCPU_SRC_KERNELS_GEMM_H_

#include <cstdint>

#include "src/runtime/thread_engine.h"

namespace neocpu {

// C[M,N] = A[M,K] * B[K,N] (+ C if accumulate). All row-major, no aliasing.
void Gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a, const float* b,
          float* c, bool accumulate = false, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_H_
