// Implementation body of the packed fp32 GEMM macro-tile driver, compiled once per ISA
// variant: the including translation unit defines NEOCPU_GEMM_VARIANT_NS (a unique
// namespace, so multiple instantiations coexist without ODR collisions) and
// NEOCPU_GEMM_TILE_FN (the exported macro-tile driver symbol), then includes this
// header.
//
// IMPORTANT: everything in the variant body is raw-pointer arithmetic on the POD
// argument block — no shared inline library functions — so a TU compiled with wider
// vector flags can never leak wide code into vague-linkage symbols another TU also
// emits. Threading and operand packing stay in the baseline-compiled dispatcher
// (gemm_packed.cc), which calls the tile driver through a function pointer.
#ifndef NEOCPU_SRC_KERNELS_GEMM_PACKED_IMPL_COMMON_
#define NEOCPU_SRC_KERNELS_GEMM_PACKED_IMPL_COMMON_

#include <cstdint>

#include "src/kernels/gemm_schedule.h"

namespace neocpu {
namespace detail {

// Resolved GEMM dims, blocking and fused-epilogue description; plain data only.
// A is pre-packed into [ceil(m/mr)][k][mr] (rows zero-padded in the last panel),
// B into [ceil(n/nr)][k][nr] (columns zero-padded), so the micro-kernels always
// compute a full mr x nr tile and only the store is bounds-guarded.
struct GemmF32Args {
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t mc = 0, nc = 0, kc = 0, mr = 0, nr = 0;
  std::int64_t nb_count = 0;  // ceil(n/nc): macro-tile index = ib * nb_count + jb
  const float* ap = nullptr;  // packed A panels
  const float* bp = nullptr;  // packed B panels
  const float* bias = nullptr;  // per-column bias, length n; null when no bias epilogue
  bool relu = false;
  float* c = nullptr;  // row-major [m][n]
};

using GemmF32TileFn = void (*)(const GemmF32Args&, std::int64_t tile);

}  // namespace detail
}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_PACKED_IMPL_COMMON_

namespace neocpu {
namespace detail {
namespace NEOCPU_GEMM_VARIANT_NS {

// Register micro-kernel: an mr x nr accumulator tile over a kcb-deep slice of one
// packed A row panel ([kcb][MR], broadcast operand) and one packed B column panel
// ([kcb][NR], vector operand). `accumulate` adds to C (non-first kc pass); `final_k`
// applies the fused bias/ReLU epilogue (last kc pass). Stores are guarded by the
// caller-computed valid rows/cols; the compute always runs the full padded tile.
template <int MR, int NR>
void MicroF32(const GemmF32Args& a, const float* __restrict ap,
              const float* __restrict bp, std::int64_t kcb, float* __restrict c,
              std::int64_t rows, std::int64_t cols, const float* __restrict bias,
              bool accumulate, bool final_k) {
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
#pragma omp simd
    for (int j = 0; j < NR; ++j) {
      acc[r][j] = 0.0f;
    }
  }
  for (std::int64_t p = 0; p < kcb; ++p) {
    const float* __restrict bv = bp + p * NR;
    const float* __restrict av = ap + p * MR;
#pragma GCC unroll 8
    for (int r = 0; r < MR; ++r) {
      const float ar = av[r];
#pragma omp simd
      for (int j = 0; j < NR; ++j) {
        acc[r][j] += ar * bv[j];
      }
    }
  }
  const std::int64_t ldc = a.n;
  if (rows == MR && cols == NR) {
    for (int r = 0; r < MR; ++r) {
      float* __restrict crow = c + r * ldc;
#pragma omp simd
      for (int j = 0; j < NR; ++j) {
        float v = acc[r][j];
        if (accumulate) {
          v += crow[j];
        }
        if (final_k) {
          if (bias != nullptr) {
            v += bias[j];
          }
          if (a.relu && v < 0.0f) {
            v = 0.0f;
          }
        }
        crow[j] = v;
      }
    }
    return;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = acc[r][j];
      if (accumulate) {
        v += crow[j];
      }
      if (final_k) {
        if (bias != nullptr) {
          v += bias[j];
        }
        if (a.relu && v < 0.0f) {
          v = 0.0f;
        }
      }
      crow[j] = v;
    }
  }
}

// Generic guarded micro-kernel: runtime mr/nr for blocking pairs outside the template
// instantiation grid. Same packed-panel contract, stack accumulators at the bounds.
inline void MicroEdgeF32(const GemmF32Args& a, const float* ap, const float* bp,
                         std::int64_t kcb, float* c, std::int64_t rows,
                         std::int64_t cols, const float* bias, bool accumulate,
                         bool final_k) {
  const std::int64_t mr = a.mr;
  const std::int64_t nr = a.nr;
  float acc[kMaxGemmMr * kMaxGemmNr];
  for (std::int64_t i = 0; i < mr * nr; ++i) {
    acc[i] = 0.0f;
  }
  for (std::int64_t p = 0; p < kcb; ++p) {
    const float* bv = bp + p * nr;
    const float* av = ap + p * mr;
    for (std::int64_t r = 0; r < mr; ++r) {
      const float ar = av[r];
      for (std::int64_t j = 0; j < nr; ++j) {
        acc[r * nr + j] += ar * bv[j];
      }
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * a.n;
    for (std::int64_t j = 0; j < cols; ++j) {
      float v = acc[r * nr + j];
      if (accumulate) {
        v += crow[j];
      }
      if (final_k) {
        if (bias != nullptr) {
          v += bias[j];
        }
        if (a.relu && v < 0.0f) {
          v = 0.0f;
        }
      }
      crow[j] = v;
    }
  }
}

using MicroF32Fn = void (*)(const GemmF32Args&, const float* __restrict,
                            const float* __restrict, std::int64_t, float* __restrict,
                            std::int64_t, std::int64_t, const float* __restrict, bool,
                            bool);

template <int MR>
MicroF32Fn SelectByNr(std::int64_t nr) {
  switch (nr) {
    case 8:
      return &MicroF32<MR, 8>;
    case 16:
      return &MicroF32<MR, 16>;
    case 32:
      return &MicroF32<MR, 32>;
    case 64:
      return &MicroF32<MR, 64>;
    default:
      return nullptr;
  }
}

inline MicroF32Fn SelectMicro(std::int64_t mr, std::int64_t nr) {
  switch (mr) {
    case 1:
      return SelectByNr<1>(nr);
    case 2:
      return SelectByNr<2>(nr);
    case 4:
      return SelectByNr<4>(nr);
    case 6:
      return SelectByNr<6>(nr);
    case 8:
      return SelectByNr<8>(nr);
    default:
      return nullptr;  // uncommon pairs fall back to MicroEdgeF32
  }
}

}  // namespace NEOCPU_GEMM_VARIANT_NS

// Macro-tile driver: one (mc x nc) block of C — kc passes over the packed panels, B
// micro-panel held innermost-reused (L1), A row panels streamed — exported per ISA
// variant and invoked by the dispatcher's ParallelFor over the macro-tile grid.
void NEOCPU_GEMM_TILE_FN(const GemmF32Args& a, std::int64_t tile) {
  namespace v = NEOCPU_GEMM_VARIANT_NS;
  const std::int64_t jb = tile % a.nb_count;
  const std::int64_t ib = tile / a.nb_count;
  const std::int64_t i0 = ib * a.mc;
  const std::int64_t i1 = i0 + a.mc < a.m ? i0 + a.mc : a.m;
  const std::int64_t j0 = jb * a.nc;
  const std::int64_t j1 = j0 + a.nc < a.n ? j0 + a.nc : a.n;

  const v::MicroF32Fn fast = v::SelectMicro(a.mr, a.nr);
  const v::MicroF32Fn micro = fast != nullptr ? fast : &v::MicroEdgeF32;

  for (std::int64_t pc = 0; pc < a.k; pc += a.kc) {
    const std::int64_t kcb = a.kc < a.k - pc ? a.kc : a.k - pc;
    const bool accumulate = pc > 0;
    const bool final_k = pc + kcb >= a.k;
    for (std::int64_t j = j0; j < j1; j += a.nr) {
      const std::int64_t bpanel = j / a.nr;
      const float* bp = a.bp + bpanel * a.k * a.nr + pc * a.nr;
      const std::int64_t cols = a.nr < a.n - j ? a.nr : a.n - j;
      const float* bias_j = a.bias != nullptr ? a.bias + j : nullptr;
      for (std::int64_t i = i0; i < i1; i += a.mr) {
        const std::int64_t apanel = i / a.mr;
        const float* ap = a.ap + apanel * a.k * a.mr + pc * a.mr;
        const std::int64_t rows = a.mr < a.m - i ? a.mr : a.m - i;
        micro(a, ap, bp, kcb, a.c + i * a.n + j, rows, cols, bias_j, accumulate,
              final_k);
      }
    }
  }
}

}  // namespace detail
}  // namespace neocpu
