#include "src/kernels/batchnorm.h"

#include <cmath>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

}  // namespace

void ComputeBnScaleShift(const Tensor& gamma, const Tensor& beta, const Tensor& mean,
                         const Tensor& var, float epsilon, Tensor* scale, Tensor* shift) {
  const std::int64_t c = gamma.NumElements();
  NEOCPU_CHECK_EQ(beta.NumElements(), c);
  NEOCPU_CHECK_EQ(mean.NumElements(), c);
  NEOCPU_CHECK_EQ(var.NumElements(), c);
  *scale = Tensor::Empty({c});
  *shift = Tensor::Empty({c});
  for (std::int64_t i = 0; i < c; ++i) {
    const float s = gamma.data()[i] / std::sqrt(var.data()[i] + epsilon);
    scale->data()[i] = s;
    shift->data()[i] = beta.data()[i] - mean.data()[i] * s;
  }
}

void ScaleShiftNCHW(const Tensor& input, const Tensor& scale, const Tensor& shift, bool relu,
                    Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  NEOCPU_CHECK_EQ(scale.NumElements(), c);
  CheckKernelOutput(out, input.dims(), input.layout(), "scale_shift");
  const float* in_base = input.data();
  const float* sc = scale.data();
  const float* sh = shift.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const std::int64_t ch = idx % c;
      const float s = sc[ch];
      const float b = sh[ch];
      const float* src = in_base + idx * plane;
      float* dst = out_base + idx * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        float v = src[i] * s + b;
        if (relu) {
          v = v > 0.0f ? v : 0.0f;
        }
        dst[i] = v;
      }
    }
  });
}

Tensor ScaleShiftNCHW(const Tensor& input, const Tensor& scale, const Tensor& shift, bool relu,
                      ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout());
  ScaleShiftNCHW(input, scale, shift, relu, &out, engine);
  return out;
}

void ScaleShiftNCHWc(const Tensor& input, const Tensor& scale, const Tensor& shift,
                     bool relu, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  const std::int64_t n = input.dim(0), cb = input.dim(1), plane = input.dim(2) * input.dim(3),
                     x = input.dim(4);
  NEOCPU_CHECK_EQ(scale.NumElements(), cb * x);
  CheckKernelOutput(out, input.dims(), input.layout(), "scale_shift");
  const float* in_base = input.data();
  const float* sc = scale.data();
  const float* sh = shift.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const std::int64_t cb_idx = idx % cb;
      const float* s = sc + cb_idx * x;
      const float* b = sh + cb_idx * x;
      const float* src = in_base + idx * plane * x;
      float* dst = out_base + idx * plane * x;
      for (std::int64_t i = 0; i < plane; ++i) {
        for (std::int64_t ci = 0; ci < x; ++ci) {
          float v = src[i * x + ci] * s[ci] + b[ci];
          if (relu) {
            v = v > 0.0f ? v : 0.0f;
          }
          dst[i * x + ci] = v;
        }
      }
    }
  });
}

Tensor ScaleShiftNCHWc(const Tensor& input, const Tensor& scale, const Tensor& shift,
                       bool relu, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout());
  ScaleShiftNCHWc(input, scale, shift, relu, &out, engine);
  return out;
}

}  // namespace neocpu
