// SSD multibox operations (prior/anchor generation, box decoding, non-max suppression).
//
// These are the post-backbone operations of SSD that OpenVINO's benchmark skips ("does
// not measure the entire SSD execution time" — Table 2 footnote); NeoCPU times them, so
// this repository implements and times them as well. MultiboxPrior is input-independent
// and is pre-computed at compile time; MultiboxDetection is layout-dependent (operates
// on flattened predictions).
#ifndef NEOCPU_SRC_KERNELS_MULTIBOX_H_
#define NEOCPU_SRC_KERNELS_MULTIBOX_H_

#include <cstdint>
#include <vector>

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

struct MultiboxPriorParams {
  std::int64_t feature_h = 0;
  std::int64_t feature_w = 0;
  std::vector<float> sizes;   // box scales relative to the image
  std::vector<float> ratios;  // aspect ratios
};

// Number of anchors per spatial location: |sizes| + |ratios| - 1 (SSD convention).
std::int64_t PriorsPerLocation(const MultiboxPriorParams& params);

// Returns {num_anchors, 4} tensor of (cx, cy, w, h) in [0,1] image coordinates.
Tensor MultiboxPrior(const MultiboxPriorParams& params);

struct MultiboxDetectionParams {
  std::int64_t num_classes = 21;    // including background at index 0
  float score_threshold = 0.01f;
  float nms_threshold = 0.45f;
  std::int64_t nms_top_k = 400;
  std::int64_t keep_top_k = 100;
  // Box-decoding variances (SSD convention).
  float variance_center = 0.1f;
  float variance_size = 0.2f;
};

// cls_prob: {num_anchors, num_classes} (post-softmax);
// loc_pred: flat {num_anchors * 4}; anchors: {num_anchors, 4}.
// Returns {keep_top_k, 6} rows of (class_id, score, x1, y1, x2, y2); unused rows have
// class_id = -1.
Tensor MultiboxDetection(const MultiboxDetectionParams& params, const Tensor& cls_prob,
                         const Tensor& loc_pred, const Tensor& anchors,
                         ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_MULTIBOX_H_
