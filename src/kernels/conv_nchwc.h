// Direct convolution in the blocked NCHW[x]c layout — the paper's Algorithm 1.
//
// The computation is organized exactly as published: the output is partitioned into
// disjoint chunks processed in parallel; within a chunk, out_width is split by reg_n and
// a register block of reg_n × oc_bn accumulators is kept live across the whole reduction
// (in_channel × kernel_h × kernel_w); one vector of oc_bn kernel values is loaded per
// reduction step and FMA-ed against reg_n broadcast input values (Figure 1).
//
// The template is "high level": schedules select among C++ template instantiations whose
// inner loops GCC auto-vectorizes into broadcast-FMA sequences — no intrinsics, no
// assembly — which is what makes the same code retargetable across ISAs (§3.1.1).
#ifndef NEOCPU_SRC_KERNELS_CONV_NCHWC_H_
#define NEOCPU_SRC_KERNELS_CONV_NCHWC_H_

#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input:    NCHW[ic_bn]c, dims {N, IC/ic_bn, IH, IW, ic_bn}
// weight:   OIHW[ic_bn]i[oc_bn]o, dims {OC/oc_bn, IC/ic_bn, KH, KW, ic_bn, oc_bn}
// bias:     flat {OC} (required iff epilogue.bias)
// residual: same layout/dims as output (required iff epilogue.residual_add)
// output:   preallocated NCHW[oc_bn]c, dims {N, OC/oc_bn, OH, OW, oc_bn}
void ConvNCHWc(const Conv2dParams& params, const ConvSchedule& schedule, const Tensor& input,
               const Tensor& weight, const Tensor* bias, const Tensor* residual,
               const ConvEpilogue& epilogue, Tensor* output, ThreadEngine* engine = nullptr);

// Convenience wrapper used by tests/benches: takes NCHW input and OIHW weight, performs
// the layout transforms internally, and returns an NCHW output (i.e. what a framework
// that wraps a library kernel per-op has to do — also the per-op cost model of the
// "layout opt. without transform elimination" ablation row).
Tensor ConvNCHWcWithTransforms(const Conv2dParams& params, const ConvSchedule& schedule,
                               const Tensor& input_nchw, const Tensor& weight_oihw,
                               const Tensor* bias, const Tensor* residual_nchw,
                               const ConvEpilogue& epilogue, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_NCHWC_H_
