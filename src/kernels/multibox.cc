#include "src/kernels/multibox.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace neocpu {
namespace {

struct Box {
  float x1, y1, x2, y2;
  float Area() const { return std::max(0.0f, x2 - x1) * std::max(0.0f, y2 - y1); }
};

float Iou(const Box& a, const Box& b) {
  Box inter{std::max(a.x1, b.x1), std::max(a.y1, b.y1), std::min(a.x2, b.x2),
            std::min(a.y2, b.y2)};
  const float ia = inter.Area();
  const float ua = a.Area() + b.Area() - ia;
  return ua > 0.0f ? ia / ua : 0.0f;
}

}  // namespace

std::int64_t PriorsPerLocation(const MultiboxPriorParams& p) {
  return static_cast<std::int64_t>(p.sizes.size() + p.ratios.size()) - 1;
}

Tensor MultiboxPrior(const MultiboxPriorParams& p) {
  NEOCPU_CHECK(!p.sizes.empty());
  NEOCPU_CHECK(!p.ratios.empty());
  const std::int64_t per_loc = PriorsPerLocation(p);
  const std::int64_t total = p.feature_h * p.feature_w * per_loc;
  Tensor out = Tensor::Empty({total, 4}, Layout::Flat());
  float* dst = out.data();
  std::int64_t idx = 0;
  for (std::int64_t y = 0; y < p.feature_h; ++y) {
    const float cy = (static_cast<float>(y) + 0.5f) / static_cast<float>(p.feature_h);
    for (std::int64_t x = 0; x < p.feature_w; ++x) {
      const float cx = (static_cast<float>(x) + 0.5f) / static_cast<float>(p.feature_w);
      // size[0] with every ratio, then the remaining sizes with ratio[0].
      for (std::size_t r = 0; r < p.ratios.size(); ++r) {
        const float size = p.sizes[0];
        const float sq = std::sqrt(p.ratios[r]);
        dst[idx * 4 + 0] = cx;
        dst[idx * 4 + 1] = cy;
        dst[idx * 4 + 2] = size * sq;
        dst[idx * 4 + 3] = size / sq;
        ++idx;
      }
      for (std::size_t s = 1; s < p.sizes.size(); ++s) {
        const float sq = std::sqrt(p.ratios[0]);
        dst[idx * 4 + 0] = cx;
        dst[idx * 4 + 1] = cy;
        dst[idx * 4 + 2] = p.sizes[s] * sq;
        dst[idx * 4 + 3] = p.sizes[s] / sq;
        ++idx;
      }
    }
  }
  NEOCPU_CHECK_EQ(idx, total);
  return out;
}

Tensor MultiboxDetection(const MultiboxDetectionParams& p, const Tensor& cls_prob,
                         const Tensor& loc_pred, const Tensor& anchors, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(cls_prob.ndim(), 2);
  const std::int64_t num_anchors = cls_prob.dim(0);
  const std::int64_t num_classes = cls_prob.dim(1);
  NEOCPU_CHECK_EQ(num_classes, p.num_classes);
  NEOCPU_CHECK_EQ(loc_pred.NumElements(), num_anchors * 4);
  NEOCPU_CHECK_EQ(anchors.NumElements(), num_anchors * 4);

  // Decode all anchor boxes once.
  std::vector<Box> boxes(static_cast<std::size_t>(num_anchors));
  const float* loc = loc_pred.data();
  const float* anc = anchors.data();
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  ParallelFor(eng, num_anchors, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const float acx = anc[i * 4 + 0], acy = anc[i * 4 + 1];
      const float aw = anc[i * 4 + 2], ah = anc[i * 4 + 3];
      const float dx = loc[i * 4 + 0] * p.variance_center;
      const float dy = loc[i * 4 + 1] * p.variance_center;
      const float dw = loc[i * 4 + 2] * p.variance_size;
      const float dh = loc[i * 4 + 3] * p.variance_size;
      const float cx = acx + dx * aw;
      const float cy = acy + dy * ah;
      const float w = aw * std::exp(dw);
      const float h = ah * std::exp(dh);
      boxes[static_cast<std::size_t>(i)] =
          Box{cx - w * 0.5f, cy - h * 0.5f, cx + w * 0.5f, cy + h * 0.5f};
    }
  });

  struct Det {
    std::int64_t cls;
    float score;
    Box box;
  };
  std::vector<Det> kept;
  const float* prob = cls_prob.data();
  // Per-class threshold + NMS (class 0 is background).
  for (std::int64_t c = 1; c < num_classes; ++c) {
    std::vector<Det> cand;
    for (std::int64_t i = 0; i < num_anchors; ++i) {
      const float s = prob[i * num_classes + c];
      if (s >= p.score_threshold) {
        cand.push_back(Det{c, s, boxes[static_cast<std::size_t>(i)]});
      }
    }
    std::sort(cand.begin(), cand.end(),
              [](const Det& a, const Det& b) { return a.score > b.score; });
    if (static_cast<std::int64_t>(cand.size()) > p.nms_top_k) {
      cand.resize(static_cast<std::size_t>(p.nms_top_k));
    }
    std::vector<Det> survivors;
    for (const Det& d : cand) {
      bool suppressed = false;
      for (const Det& s : survivors) {
        if (Iou(d.box, s.box) > p.nms_threshold) {
          suppressed = true;
          break;
        }
      }
      if (!suppressed) {
        survivors.push_back(d);
      }
    }
    kept.insert(kept.end(), survivors.begin(), survivors.end());
  }
  std::sort(kept.begin(), kept.end(),
            [](const Det& a, const Det& b) { return a.score > b.score; });
  if (static_cast<std::int64_t>(kept.size()) > p.keep_top_k) {
    kept.resize(static_cast<std::size_t>(p.keep_top_k));
  }

  Tensor out = Tensor::Full({p.keep_top_k, 6}, -1.0f, Layout::Flat());
  float* dst = out.data();
  for (std::size_t i = 0; i < kept.size(); ++i) {
    dst[i * 6 + 0] = static_cast<float>(kept[i].cls);
    dst[i * 6 + 1] = kept[i].score;
    dst[i * 6 + 2] = kept[i].box.x1;
    dst[i * 6 + 3] = kept[i].box.y1;
    dst[i * 6 + 4] = kept[i].box.x2;
    dst[i * 6 + 5] = kept[i].box.y2;
  }
  return out;
}

}  // namespace neocpu
