// Transformer-encoder building blocks (LayerNorm, 2-D transpose, multi-head
// attention).
//
// The paper's pipeline is CNN-centric, but its serving story — tuned GEMMs behind a
// compiled graph — extends directly to encoder blocks: every FLOP-heavy piece of an
// encoder layer (QKV projections, attention output projection, the FFN) is a Dense
// lowered onto the packed GEMM family (kernels/gemm_packed*.h). What remains are the
// memory-bound glue ops below. They follow the repo-wide kernel contract: an
// allocating Tensor form plus an execute-into form for the memory-planned executor,
// with ThreadEngine-parallel row loops.
#ifndef NEOCPU_SRC_KERNELS_TRANSFORMER_H_
#define NEOCPU_SRC_KERNELS_TRANSFORMER_H_

#include <cstdint>

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Row-wise layer normalization over a {M, D} (or flat {D}) f32 tensor:
//   out[m, d] = gamma[d] * (x[m, d] - mean_m) / sqrt(var_m + epsilon) + beta[d]
// gamma/beta are {D} constants.
Tensor LayerNormRows(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                     float epsilon, ThreadEngine* engine = nullptr);
void LayerNormRows(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                   float epsilon, Tensor* out, ThreadEngine* engine = nullptr);

// {M, N} -> {N, M} transpose of a 2-D f32 tensor.
Tensor Transpose2D(const Tensor& input, ThreadEngine* engine = nullptr);
void Transpose2D(const Tensor& input, Tensor* out, ThreadEngine* engine = nullptr);

// Scaled dot-product multi-head attention. q/k/v are {batch*seq, dim} f32 tensors
// (already projected); dim must divide by `heads` and the row count by `seq`. For each
// (batch, head) pair with head width dh = dim/heads:
//   scores = softmax(Q_h K_h^T / sqrt(dh))   ({seq, seq})
//   out_h  = scores V_h                      ({seq, dh})
// Heads are concatenated back into {batch*seq, dim} (the caller applies the output
// projection as an ordinary Dense). `workspace`, when given, must hold
// MhaWorkspaceFloats(...) floats — the per-(batch, head) score buffers; null workspace
// allocates internally (reference/unplanned path).
void MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                        std::int64_t heads, std::int64_t seq, Tensor* out,
                        ThreadEngine* engine = nullptr, float* workspace = nullptr);
Tensor MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          std::int64_t heads, std::int64_t seq,
                          ThreadEngine* engine = nullptr);

// Floats of scratch MultiHeadAttention needs for {rows, dim} inputs: one {seq, seq}
// score tile per (batch, head) unit so units parallelize without sharing.
std::int64_t MhaWorkspaceFloats(std::int64_t rows, std::int64_t seq,
                                std::int64_t heads);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_TRANSFORMER_H_
