// Dense (fully-connected / GEMM) workload descriptor — the second workload class the
// tuning stack understands, alongside Conv2dParams. A DenseParams value identifies one
// tuned GEMM problem C[m,n] = A[m,k] * B[k,n]: for a dense layer m is the batch (rows
// in flight — part of the workload identity exactly like a conv's batch), n the output
// features and k the input features.
#ifndef NEOCPU_SRC_KERNELS_DENSE_PARAMS_H_
#define NEOCPU_SRC_KERNELS_DENSE_PARAMS_H_

#include <cstdint>
#include <string>

namespace neocpu {

struct DenseParams {
  std::int64_t m = 0;  // rows (batch * sequence for transformer layers)
  std::int64_t n = 0;  // output features
  std::int64_t k = 0;  // input features (reduction depth)

  bool operator==(const DenseParams&) const = default;

  // Multiply-accumulate count (FLOPs = 2 * Macs).
  double Macs() const {
    return static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  }

  std::string ToString() const;
  // Stable shape token inside a WorkloadKey: "dense:M_N_K". The "dense:" prefix is what
  // routes WorkloadKey::Parse here instead of Conv2dParams::ParseCacheKey (and makes
  // pre-dense readers reject the token cleanly rather than misparse it as a conv).
  std::string CacheKey() const;
  // Inverse of CacheKey. Returns false (leaving *params untouched) unless `text` is
  // exactly what CacheKey() would produce.
  static bool ParseCacheKey(const std::string& text, DenseParams* params);
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_DENSE_PARAMS_H_
