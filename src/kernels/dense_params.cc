#include "src/kernels/dense_params.h"

#include <cstdio>

#include "src/base/string_util.h"

namespace neocpu {

std::string DenseParams::ToString() const {
  return StrFormat("dense m=%lld n=%lld k=%lld", static_cast<long long>(m),
                   static_cast<long long>(n), static_cast<long long>(k));
}

std::string DenseParams::CacheKey() const {
  return StrFormat("dense:%lld_%lld_%lld", static_cast<long long>(m),
                   static_cast<long long>(n), static_cast<long long>(k));
}

bool DenseParams::ParseCacheKey(const std::string& text, DenseParams* params) {
  long long m = 0, n = 0, k = 0;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "dense:%lld_%lld_%lld%n", &m, &n, &k, &consumed) != 3 ||
      static_cast<std::size_t>(consumed) != text.size()) {
    return false;
  }
  if (m <= 0 || n <= 0 || k <= 0) {
    return false;
  }
  params->m = m;
  params->n = n;
  params->k = k;
  return true;
}

}  // namespace neocpu
