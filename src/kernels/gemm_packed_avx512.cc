// AVX-512 instantiation of the packed fp32 GEMM tile driver. This TU is compiled with
// -mavx512{f,bw,vl,dq} (see CMakeLists.txt) and only ever entered after the
// dispatcher's cpuid check.
#define NEOCPU_GEMM_VARIANT_NS gemm_f32_avx512
#define NEOCPU_GEMM_TILE_FN GemmF32TileAvx512
#include "src/kernels/gemm_packed_impl.h"
