// Direct s8xs8 -> s32 convolution in the blocked NCHW[x]c layout.
//
// The int8 sibling of conv_nchwc.cc (Algorithm 1): the same disjoint-output-chunk
// parallelization and reg_n x oc_bn register blocking, with s32 accumulators and the
// quantization epilogue fused in — per-output-channel multiplier (in_scale * w_scale[oc]
// [/ out_scale]), s32 bias, ReLU in the integer domain, and either a requantize store to
// s8 or a dequantize store to f32.
//
// Portability: the kernel source is plain loops + `omp simd` (no intrinsics, no VNNI
// requirement). Because the library builds at the portable baseline ISA, the translation
// unit is additionally compiled under -mavx2/-mavx512bw (when the toolchain supports
// them) and the entry point picks the widest variant the *running* CPU exposes — the
// oneDNN/IntelCaffe structure of ISA-dispatched int8 kernels, with identical integer
// results from every variant. Schedule-space admission is gated by Target::int8_dot.
#ifndef NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_
#define NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_

#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input:      s8 or u8 NCHW[ic_bn]c, dims {N, IC/ic_bn, IH, IW, ic_bn}
// weight:     s8 OIHW[ic_bn]i[oc_bn]o, dims {OC/oc_bn, IC/ic_bn, KH, KW, ic_bn, oc_bn}.
//             For u8 input the inner [ic_bn][oc_bn] tile must be VNNI-packed to
//             [ic_bn/4][oc_bn][4] (PackWeightsVnni) and ic_bn % 4 == 0.
// bias:       s32 flat {OC} (required iff epilogue.bias), pre-folded to the accumulation
//             domain (QuantizeBiasS32); for u8 input the zero-point correction
//             -in_zero * sum(w[oc,...]) must already be folded in.
// multiplier: f32 flat {OC}: in_scale * w_scale[oc] / out_scale when requantizing,
//             in_scale * w_scale[oc] when dequantizing to f32
// output:     preallocated NCHW[oc_bn]c: s8 or u8 when `requant` (u8 stores add
//             `out_zero` before the 0..255 clamp), f32 otherwise
// Residual epilogues are not supported in int8 (quantization legality excludes them,
// like Winograd); epilogue.relu applies in the integer domain before the store.
// `in_zero` is the u8 input's zero point: the kernel reads a virtual `in_zero` byte at
// padded positions (f32 zero == the zero point) so the whole-tap bias fold stays exact
// on borders. Ignored for s8 input.
void ConvNCHWcS8(const Conv2dParams& params, const ConvSchedule& schedule,
                 const Tensor& input, const Tensor& weight, const Tensor* bias,
                 const Tensor& multiplier, const ConvEpilogue& epilogue, bool requant,
                 Tensor* output, ThreadEngine* engine = nullptr,
                 std::int32_t out_zero = 0, std::int32_t in_zero = 0);

// Name of the ISA variant the dispatcher would run on this host ("baseline", "avx2",
// "avx512", "avx512vnni") — surfaced by benches and tests.
const char* ConvNCHWcS8IsaName();

// Pin the int8 row-driver dispatch to a named tier the running CPU supports (parity
// tests and bench ablations). Returns false — and leaves the dispatch untouched — when
// the tier was not compiled in or the CPU lacks it. nullptr/"" restores auto dispatch.
// Not thread-safe against concurrent ConvNCHWcS8 calls.
bool SetConvNCHWcS8IsaOverride(const char* name);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_
