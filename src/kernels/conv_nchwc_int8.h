// Direct s8xs8 -> s32 convolution in the blocked NCHW[x]c layout.
//
// The int8 sibling of conv_nchwc.cc (Algorithm 1): the same disjoint-output-chunk
// parallelization and reg_n x oc_bn register blocking, with s32 accumulators and the
// quantization epilogue fused in — per-output-channel multiplier (in_scale * w_scale[oc]
// [/ out_scale]), s32 bias, ReLU in the integer domain, and either a requantize store to
// s8 or a dequantize store to f32.
//
// Portability: the kernel source is plain loops + `omp simd` (no intrinsics, no VNNI
// requirement). Because the library builds at the portable baseline ISA, the translation
// unit is additionally compiled under -mavx2/-mavx512bw (when the toolchain supports
// them) and the entry point picks the widest variant the *running* CPU exposes — the
// oneDNN/IntelCaffe structure of ISA-dispatched int8 kernels, with identical integer
// results from every variant. Schedule-space admission is gated by Target::int8_dot.
#ifndef NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_
#define NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_

#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input:      s8 NCHW[ic_bn]c, dims {N, IC/ic_bn, IH, IW, ic_bn}
// weight:     s8 OIHW[ic_bn]i[oc_bn]o, dims {OC/oc_bn, IC/ic_bn, KH, KW, ic_bn, oc_bn}
// bias:       s32 flat {OC} (required iff epilogue.bias), pre-folded to the accumulation
//             domain (QuantizeBiasS32)
// multiplier: f32 flat {OC}: in_scale * w_scale[oc] / out_scale when requantizing to s8,
//             in_scale * w_scale[oc] when dequantizing to f32
// output:     preallocated NCHW[oc_bn]c: s8 when `requant`, f32 otherwise
// Residual epilogues are not supported in int8 (quantization legality excludes them,
// like Winograd); epilogue.relu applies in the integer domain before the store.
void ConvNCHWcS8(const Conv2dParams& params, const ConvSchedule& schedule,
                 const Tensor& input, const Tensor& weight, const Tensor* bias,
                 const Tensor& multiplier, const ConvEpilogue& epilogue, bool requant,
                 Tensor* output, ThreadEngine* engine = nullptr);

// Name of the ISA variant the dispatcher would run on this host ("baseline", "avx2",
// "avx512") — surfaced by benches and tests.
const char* ConvNCHWcS8IsaName();

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_H_
