// AVX2+FMA instantiation of the packed fp32 GEMM tile driver. This TU is compiled
// with -mavx2 -mfma (see CMakeLists.txt) and only ever entered after the dispatcher's
// cpuid check.
#define NEOCPU_GEMM_VARIANT_NS gemm_f32_avx2
#define NEOCPU_GEMM_TILE_FN GemmF32TileAvx2
#include "src/kernels/gemm_packed_impl.h"
