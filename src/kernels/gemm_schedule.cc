#include "src/kernels/gemm_schedule.h"

#include <sstream>

namespace neocpu {

std::string GemmSchedule::ToString() const {
  std::ostringstream os;
  os << "(mc=" << mc << ", nc=" << nc << ", kc=" << kc << ", mr=" << mr
     << ", nr=" << nr << ", " << DTypeName(dtype) << ")";
  return os.str();
}

}  // namespace neocpu
