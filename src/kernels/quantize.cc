#include "src/kernels/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

template <typename Q>
void QuantizeImpl(const Tensor& input, float scale, std::int32_t zero_point, Tensor* out,
                  ThreadEngine* engine, std::int32_t lo, std::int32_t hi) {
  const float inv = 1.0f / scale;
  const float* src = input.data_as<float>();
  Q* dst = out->template data_as<Q>();
  ParallelFor(Engine(engine), input.NumElements(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      const std::int32_t q = static_cast<std::int32_t>(std::lrintf(src[i] * inv)) + zero_point;
      dst[i] = static_cast<Q>(std::clamp(q, lo, hi));
    }
  });
}

}  // namespace

float SymmetricScale(float lo, float hi) {
  const float amax = std::max(std::fabs(lo), std::fabs(hi));
  return std::max(amax, 1e-8f) / static_cast<float>(kS8QuantMax);
}

void Quantize(const Tensor& input, float scale, std::int32_t zero_point, DType dtype,
              Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK(input.dtype() == DType::kF32) << "quantize reads f32, got "
                                             << input.DebugString();
  NEOCPU_CHECK_GT(scale, 0.0f);
  CheckKernelOutput(out, input.dims(), input.layout(), "quantize");
  if (dtype == DType::kS8) {
    NEOCPU_CHECK_EQ(zero_point, 0) << "s8 quantization is symmetric";
    NEOCPU_CHECK(out->dtype() == DType::kS8) << out->DebugString();
    QuantizeImpl<std::int8_t>(input, scale, zero_point, out, engine, -kS8QuantMax,
                              kS8QuantMax);
  } else {
    NEOCPU_CHECK(dtype == DType::kU8) << "quantize targets s8 or u8";
    NEOCPU_CHECK(out->dtype() == DType::kU8) << out->DebugString();
    QuantizeImpl<std::uint8_t>(input, scale, zero_point, out, engine, 0, 255);
  }
}

Tensor Quantize(const Tensor& input, float scale, std::int32_t zero_point, DType dtype,
                ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout(), dtype);
  Quantize(input, scale, zero_point, dtype, &out, engine);
  return out;
}

void Dequantize(const Tensor& input, float scale, std::int32_t zero_point, Tensor* out,
                ThreadEngine* engine) {
  NEOCPU_CHECK_GT(scale, 0.0f);
  CheckKernelOutput(out, input.dims(), input.layout(), "dequantize");
  NEOCPU_CHECK(out->dtype() == DType::kF32) << out->DebugString();
  float* dst = out->data_as<float>();
  auto run = [&](auto* src) {
    ParallelFor(Engine(engine), input.NumElements(),
                [&](std::int64_t begin, std::int64_t end) {
                  for (std::int64_t i = begin; i < end; ++i) {
                    dst[i] = scale * static_cast<float>(static_cast<std::int32_t>(src[i]) -
                                                        zero_point);
                  }
                });
  };
  switch (input.dtype()) {
    case DType::kS8:
      run(input.data_as<std::int8_t>());
      return;
    case DType::kU8:
      run(input.data_as<std::uint8_t>());
      return;
    case DType::kS32:
      run(input.data_as<std::int32_t>());
      return;
    case DType::kF32:
      break;
  }
  LOG(FATAL) << "dequantize reads s8/u8/s32, got " << input.DebugString();
}

Tensor Dequantize(const Tensor& input, float scale, std::int32_t zero_point,
                  ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout(), DType::kF32);
  Dequantize(input, scale, zero_point, &out, engine);
  return out;
}

void QuantizeConvWeightsPerOC(const Tensor& w_oihw, Tensor* w_s8,
                              std::vector<float>* scales) {
  NEOCPU_CHECK(w_s8 != nullptr && scales != nullptr);
  NEOCPU_CHECK(w_oihw.dtype() == DType::kF32);
  NEOCPU_CHECK(w_oihw.ndim() == 4 || w_oihw.ndim() == 2) << w_oihw.DebugString();
  const std::int64_t oc = w_oihw.dim(0);
  const std::int64_t per_oc = w_oihw.NumElements() / oc;
  *w_s8 = Tensor::Empty(w_oihw.dims(), w_oihw.layout(), DType::kS8);
  scales->assign(static_cast<std::size_t>(oc), 0.0f);
  const float* src = w_oihw.data_as<float>();
  std::int8_t* dst = w_s8->data_as<std::int8_t>();
  for (std::int64_t o = 0; o < oc; ++o) {
    const float* row = src + o * per_oc;
    float amax = 0.0f;
    for (std::int64_t i = 0; i < per_oc; ++i) {
      amax = std::max(amax, std::fabs(row[i]));
    }
    const float scale = std::max(amax, 1e-8f) / static_cast<float>(kS8QuantMax);
    (*scales)[static_cast<std::size_t>(o)] = scale;
    const float inv = 1.0f / scale;
    std::int8_t* qrow = dst + o * per_oc;
    for (std::int64_t i = 0; i < per_oc; ++i) {
      const std::int32_t q = static_cast<std::int32_t>(std::lrintf(row[i] * inv));
      qrow[i] = static_cast<std::int8_t>(std::clamp(q, -kS8QuantMax, kS8QuantMax));
    }
  }
}

void AffineScaleZeroPoint(float lo, float hi, float* scale, std::int32_t* zero_point) {
  NEOCPU_CHECK(scale != nullptr && zero_point != nullptr);
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  *scale = std::max(hi - lo, 1e-8f) / 255.0f;
  const std::int32_t zp = static_cast<std::int32_t>(std::lrintf(-lo / *scale));
  *zero_point = std::clamp(zp, 0, 255);
}

Tensor PackWeightsVnni(const Tensor& w_blocked_s8) {
  NEOCPU_CHECK(w_blocked_s8.dtype() == DType::kS8);
  NEOCPU_CHECK_EQ(w_blocked_s8.ndim(), 6) << w_blocked_s8.DebugString();
  const std::int64_t icb = w_blocked_s8.dim(4);
  const std::int64_t ocb = w_blocked_s8.dim(5);
  NEOCPU_CHECK_EQ(icb % 4, 0) << "VNNI packing needs ic_bn % 4 == 0";
  Tensor out = Tensor::Empty(w_blocked_s8.dims(), w_blocked_s8.layout(), DType::kS8);
  const std::int8_t* src = w_blocked_s8.data_as<std::int8_t>();
  std::int8_t* dst = out.data_as<std::int8_t>();
  const std::int64_t tiles = w_blocked_s8.NumElements() / (icb * ocb);
  for (std::int64_t t = 0; t < tiles; ++t) {
    const std::int8_t* st = src + t * icb * ocb;
    std::int8_t* dt = dst + t * icb * ocb;
    for (std::int64_t ici = 0; ici < icb; ++ici) {
      for (std::int64_t j = 0; j < ocb; ++j) {
        dt[(ici / 4) * ocb * 4 + j * 4 + (ici % 4)] = st[ici * ocb + j];
      }
    }
  }
  return out;
}

void FoldZeroPointIntoBias(const Tensor& w_blocked_s8, std::int32_t in_zero,
                           Tensor* bias_s32) {
  NEOCPU_CHECK(bias_s32 != nullptr && bias_s32->dtype() == DType::kS32);
  NEOCPU_CHECK(w_blocked_s8.dtype() == DType::kS8);
  NEOCPU_CHECK_EQ(w_blocked_s8.ndim(), 6) << w_blocked_s8.DebugString();
  if (in_zero == 0) {
    return;
  }
  // Dims {OCB_cnt, ICB_cnt, KH, KW, ic_bn, oc_bn}, standard (un-packed) tile order:
  // the column j of each [ic_bn][oc_bn] tile is output channel oco*oc_bn + j. Call
  // this BEFORE PackWeightsVnni — the reorder moves elements across columns.
  const std::int64_t ocb_cnt = w_blocked_s8.dim(0);
  const std::int64_t ocb = w_blocked_s8.dim(5);
  const std::int64_t red = w_blocked_s8.dim(1) * w_blocked_s8.dim(2) *
                           w_blocked_s8.dim(3) * w_blocked_s8.dim(4);
  NEOCPU_CHECK_EQ(bias_s32->NumElements(), ocb_cnt * ocb);
  const std::int8_t* w = w_blocked_s8.data_as<std::int8_t>();
  std::int32_t* bias = bias_s32->data_as<std::int32_t>();
  for (std::int64_t oco = 0; oco < ocb_cnt; ++oco) {
    std::vector<std::int64_t> sums(static_cast<std::size_t>(ocb), 0);
    const std::int8_t* wo = w + oco * red * ocb;
    for (std::int64_t i = 0; i < red; ++i) {
      for (std::int64_t j = 0; j < ocb; ++j) {
        sums[static_cast<std::size_t>(j)] += wo[i * ocb + j];
      }
    }
    for (std::int64_t j = 0; j < ocb; ++j) {
      bias[oco * ocb + j] -= in_zero * static_cast<std::int32_t>(
                                           sums[static_cast<std::size_t>(j)]);
    }
  }
}

Tensor QuantizeBiasS32(const Tensor& bias_f32, float in_scale,
                       const std::vector<float>& w_scales) {
  NEOCPU_CHECK(bias_f32.dtype() == DType::kF32);
  NEOCPU_CHECK_EQ(bias_f32.NumElements(), static_cast<std::int64_t>(w_scales.size()));
  Tensor out = Tensor::Empty(bias_f32.dims(), bias_f32.layout(), DType::kS32);
  const float* src = bias_f32.data_as<float>();
  std::int32_t* dst = out.data_as<std::int32_t>();
  for (std::size_t o = 0; o < w_scales.size(); ++o) {
    const double acc_scale = static_cast<double>(in_scale) * w_scales[o];
    dst[o] = static_cast<std::int32_t>(std::llrint(src[o] / acc_scale));
  }
  return out;
}

}  // namespace neocpu
