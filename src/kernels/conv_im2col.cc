#include "src/kernels/conv_im2col.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/kernels/gemm_packed.h"

namespace neocpu {
namespace {

// Expands one image's receptive fields into col[IC*KH*KW, OH*OW].
void Im2col(const Conv2dParams& p, const float* in, float* col, ThreadEngine& eng) {
  const std::int64_t oh_count = p.OutH();
  const std::int64_t ow_count = p.OutW();
  const std::int64_t out_plane = oh_count * ow_count;
  const std::int64_t rows = p.in_c * p.kernel_h * p.kernel_w;
  ParallelFor(eng, rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      const std::int64_t kw = r % p.kernel_w;
      const std::int64_t kh = (r / p.kernel_w) % p.kernel_h;
      const std::int64_t ic = r / (p.kernel_w * p.kernel_h);
      const float* in_ch = in + ic * p.in_h * p.in_w;
      float* col_row = col + r * out_plane;
      for (std::int64_t oh = 0; oh < oh_count; ++oh) {
        const std::int64_t ih = oh * p.stride_h - p.pad_h + kh;
        float* dst = col_row + oh * ow_count;
        if (ih < 0 || ih >= p.in_h) {
          std::memset(dst, 0, static_cast<std::size_t>(ow_count) * sizeof(float));
          continue;
        }
        const float* in_row = in_ch + ih * p.in_w;
        for (std::int64_t ow = 0; ow < ow_count; ++ow) {
          const std::int64_t iw = ow * p.stride_w - p.pad_w + kw;
          dst[ow] = (iw >= 0 && iw < p.in_w) ? in_row[iw] : 0.0f;
        }
      }
    }
  });
}

// The GEMM C[out_c, out_plane] = W[out_c, k] * col[k, out_plane] runs on the packed
// kernel family at its default blocking — im2col is a baseline, so its GEMM is not
// schedule-searched, but it shares the register micro-kernels and ISA dispatch with
// the tuned dense path. ConvIm2colWorkspaceBytes and the kernel must agree on this
// schedule: the workspace is carved as [col | packed B | packed A].
GemmSchedule Im2colGemmSchedule() { return GemmSchedule{}; }

std::int64_t ColElems(const Conv2dParams& p) {
  return p.in_c * p.kernel_h * p.kernel_w * p.OutH() * p.OutW();
}

}  // namespace

std::size_t ConvIm2colWorkspaceBytes(const Conv2dParams& p) {
  const GemmSchedule s = Im2colGemmSchedule();
  const std::int64_t k = p.in_c * p.kernel_h * p.kernel_w;
  const std::int64_t out_plane = p.OutH() * p.OutW();
  return (static_cast<std::size_t>(ColElems(p)) + PackedBF32Elems(out_plane, k, s) +
          PackedAF32Elems(p.out_c, k, s)) *
         sizeof(float);
}

void ConvIm2col(const Conv2dParams& p, const Tensor& input, const Tensor& weight,
                const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                Tensor* output, ThreadEngine* engine, float* workspace) {
  NEOCPU_CHECK(output != nullptr);
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  const GemmSchedule s = Im2colGemmSchedule();
  const std::int64_t oh_count = p.OutH();
  const std::int64_t ow_count = p.OutW();
  const std::int64_t out_plane = oh_count * ow_count;
  const std::int64_t k = p.in_c * p.kernel_h * p.kernel_w;
  Tensor ws_owned;  // fallback when the caller supplies no planned workspace
  if (workspace == nullptr) {
    ws_owned = Tensor::Empty(
        {static_cast<std::int64_t>(ConvIm2colWorkspaceBytes(p) / sizeof(float))});
    workspace = ws_owned.data();
  }
  float* col = workspace;
  float* packed_b = col + ColElems(p);
  float* packed_a = packed_b + PackedBF32Elems(out_plane, k, s);
  const float* bias_base = epilogue.bias && bias != nullptr ? bias->data() : nullptr;
  const float* res_base =
      epilogue.residual_add && residual != nullptr ? residual->data() : nullptr;
  // The conv bias is per output channel — a per-M broadcast, which the GEMM epilogue
  // (per-N bias) cannot express; ReLU fuses into the GEMM only when it is the whole
  // epilogue.
  const bool fuse_relu = epilogue.relu && bias_base == nullptr && res_base == nullptr;
  const bool post_pass = bias_base != nullptr || res_base != nullptr;

  for (std::int64_t n = 0; n < p.batch; ++n) {
    const float* in_n = input.data() + n * p.in_c * p.in_h * p.in_w;
    float* out_n = output->data() + n * p.out_c * out_plane;
    Im2col(p, in_n, col, eng);
    PackBF32(col, out_plane, k, s, packed_b);
    GemmPackedF32(p.out_c, out_plane, k, weight.data(), packed_b, nullptr, fuse_relu,
                  out_n, s, packed_a, &eng);
    if (!post_pass) {
      continue;
    }

    ParallelFor(eng, p.out_c, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t oc = begin; oc < end; ++oc) {
        float* row = out_n + oc * out_plane;
        const float b = bias_base != nullptr ? bias_base[oc] : 0.0f;
        const float* res_row =
            res_base != nullptr ? res_base + (n * p.out_c + oc) * out_plane : nullptr;
        for (std::int64_t i = 0; i < out_plane; ++i) {
          float v = row[i] + b;
          if (res_row != nullptr) {
            v += res_row[i];
          }
          if (epilogue.relu) {
            v = v > 0.0f ? v : 0.0f;
          }
          row[i] = v;
        }
      }
    });
  }
}

Tensor ConvIm2col(const Conv2dParams& p, const Tensor& input, const Tensor& weight,
                  const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                  ThreadEngine* engine) {
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  ConvIm2col(p, input, weight, bias, residual, epilogue, &out, engine);
  return out;
}

}  // namespace neocpu
