#include "src/kernels/conv_nchwc.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

// Resolved dimensions and element strides shared by the micro-kernels.
struct ConvDims {
  std::int64_t n, icb_count, ih, iw, icb;  // input physical dims
  std::int64_t ocb_count, oh, ow, ocb;     // output physical dims
  std::int64_t kh, kw, sh, sw, ph, pw;
  std::int64_t in_sn, in_sc, in_sh;    // input strides (innermost stride is icb)
  std::int64_t w_so, w_sc;             // weight strides per oc-block / ic-block
  std::int64_t out_sn, out_sc, out_sh; // output strides (innermost stride is ocb)
};

// Interior micro-kernel: computes REGN consecutive out_width positions for one
// (n, oc_block, oh) row with no horizontal bounds checks (caller guarantees validity).
// acc[REGN][OCB] is the register block of Figure 1; the `j` loops vectorize to one FMA
// per OCB/vector-lane group, the `r` loop is the reg_n register blocking.
template <int OCB, int REGN, bool UNROLL>
void MicroInterior(const ConvDims& d, const float* __restrict in_n, const float* __restrict w_o,
                   const float* bias_o, const float* res_row, bool relu, std::int64_t oh,
                   std::int64_t ow0, float* __restrict out_row) {
  float acc[REGN][OCB];
  if (bias_o != nullptr) {
    for (int r = 0; r < REGN; ++r) {
      for (int j = 0; j < OCB; ++j) {
        acc[r][j] = bias_o[j];
      }
    }
  } else {
    for (int r = 0; r < REGN; ++r) {
      for (int j = 0; j < OCB; ++j) {
        acc[r][j] = 0.0f;
      }
    }
  }

  const std::int64_t iw0 = ow0 * d.sw - d.pw;
  const std::int64_t icb = d.icb;
  const std::int64_t w_kstride = icb * OCB;  // weight stride per (kh, kw) entry

  for (std::int64_t ico = 0; ico < d.icb_count; ++ico) {
    const float* in_c = in_n + ico * d.in_sc;
    const float* w_c = w_o + ico * d.w_sc;
    for (std::int64_t kh = 0; kh < d.kh; ++kh) {
      const std::int64_t ih = oh * d.sh - d.ph + kh;
      if (ih < 0 || ih >= d.ih) {
        continue;
      }
      const float* in_h = in_c + ih * d.in_sh + iw0 * icb;
      const float* w_h = w_c + kh * d.kw * w_kstride;
      auto kw_body = [&](std::int64_t kw) {
        const float* __restrict w_k = w_h + kw * w_kstride;
        const float* __restrict in_w = in_h + kw * icb;
        for (std::int64_t ici = 0; ici < icb; ++ici) {
          const float* __restrict wv = w_k + ici * OCB;
          // The j loop is the SIMD dimension: the `omp simd` annotation pins it for the
          // vectorizer (GCC would otherwise completely peel trip counts <= 16 early and
          // scalarize). The r loop is the register blocking of Figure 1: one broadcast
          // and one vector FMA per iteration after vectorization.
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const float iv = in_w[static_cast<std::int64_t>(r) * d.sw * icb + ici];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              acc[r][j] += iv * wv[j];
            }
          }
        }
      };
      if constexpr (UNROLL) {
#pragma GCC unroll 8
        for (std::int64_t kw = 0; kw < d.kw; ++kw) {
          kw_body(kw);
        }
      } else {
#pragma GCC unroll 1
        for (std::int64_t kw = 0; kw < d.kw; ++kw) {
          kw_body(kw);
        }
      }
    }
  }

  float* __restrict out = out_row + ow0 * OCB;
  if (res_row != nullptr) {
    const float* __restrict res = res_row + ow0 * OCB;
    for (int r = 0; r < REGN; ++r) {
      for (int j = 0; j < OCB; ++j) {
        acc[r][j] += res[static_cast<std::int64_t>(r) * OCB + j];
      }
    }
  }
  if (relu) {
    for (int r = 0; r < REGN; ++r) {
      for (int j = 0; j < OCB; ++j) {
        acc[r][j] = acc[r][j] > 0.0f ? acc[r][j] : 0.0f;
      }
    }
  }
  for (int r = 0; r < REGN; ++r) {
    for (int j = 0; j < OCB; ++j) {
      out[static_cast<std::int64_t>(r) * OCB + j] = acc[r][j];
    }
  }
}

// Generic guarded micro-kernel: runtime block sizes, per-element horizontal bounds
// checks. Handles image edges (padding), out_width tails, and uncommon oc_bn values.
void MicroEdge(const ConvDims& d, const float* in_n, const float* w_o, const float* bias_o,
               const float* res_row, bool relu, std::int64_t oh, std::int64_t ow0,
               std::int64_t count, float* out_row) {
  float acc[kMaxRegN][kMaxChannelBlock];
  const std::int64_t ocb = d.ocb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      acc[r][j] = bias_o != nullptr ? bias_o[j] : 0.0f;
    }
  }
  const std::int64_t icb = d.icb;
  const std::int64_t w_kstride = icb * ocb;
  for (std::int64_t ico = 0; ico < d.icb_count; ++ico) {
    const float* in_c = in_n + ico * d.in_sc;
    const float* w_c = w_o + ico * d.w_sc;
    for (std::int64_t kh = 0; kh < d.kh; ++kh) {
      const std::int64_t ih = oh * d.sh - d.ph + kh;
      if (ih < 0 || ih >= d.ih) {
        continue;
      }
      const float* in_h = in_c + ih * d.in_sh;
      const float* w_h = w_c + kh * d.kw * w_kstride;
      for (std::int64_t kw = 0; kw < d.kw; ++kw) {
        const float* w_k = w_h + kw * w_kstride;
        for (std::int64_t r = 0; r < count; ++r) {
          const std::int64_t iw = (ow0 + r) * d.sw - d.pw + kw;
          if (iw < 0 || iw >= d.iw) {
            continue;
          }
          const float* in_w = in_h + iw * icb;
          for (std::int64_t ici = 0; ici < icb; ++ici) {
            const float iv = in_w[ici];
            const float* wv = w_k + ici * ocb;
            for (std::int64_t j = 0; j < ocb; ++j) {
              acc[r][j] += iv * wv[j];
            }
          }
        }
      }
    }
  }
  float* out = out_row + ow0 * ocb;
  const float* res = res_row != nullptr ? res_row + ow0 * ocb : nullptr;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      float v = acc[r][j];
      if (res != nullptr) {
        v += res[r * ocb + j];
      }
      if (relu) {
        v = v > 0.0f ? v : 0.0f;
      }
      out[r * ocb + j] = v;
    }
  }
}

using MicroFn = void (*)(const ConvDims&, const float*, const float*, const float*,
                         const float*, bool, std::int64_t, std::int64_t, float*);

template <int OCB, bool UNROLL>
MicroFn SelectByRegN(std::int64_t reg_n) {
  switch (reg_n) {
    case 2:
      return &MicroInterior<OCB, 2, UNROLL>;
    case 4:
      return &MicroInterior<OCB, 4, UNROLL>;
    case 8:
      return &MicroInterior<OCB, 8, UNROLL>;
    case 16:
      return &MicroInterior<OCB, 16, UNROLL>;
    case 32:
      return &MicroInterior<OCB, 32, UNROLL>;
    default:
      return nullptr;
  }
}

template <int OCB>
MicroFn SelectByUnroll(std::int64_t reg_n, bool unroll) {
  return unroll ? SelectByRegN<OCB, true>(reg_n) : SelectByRegN<OCB, false>(reg_n);
}

MicroFn SelectMicro(std::int64_t ocb, std::int64_t reg_n, bool unroll) {
  switch (ocb) {
    case 4:
      return SelectByUnroll<4>(reg_n, unroll);
    case 8:
      return SelectByUnroll<8>(reg_n, unroll);
    case 16:
      return SelectByUnroll<16>(reg_n, unroll);
    case 32:
      return SelectByUnroll<32>(reg_n, unroll);
    default:
      return nullptr;  // caller falls back to MicroEdge for uncommon blocks
  }
}

}  // namespace

void ConvNCHWc(const Conv2dParams& p, const ConvSchedule& s, const Tensor& input,
               const Tensor& weight, const Tensor* bias, const Tensor* residual,
               const ConvEpilogue& epilogue, Tensor* output, ThreadEngine* engine) {
  NEOCPU_CHECK(output != nullptr);
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  NEOCPU_CHECK_EQ(weight.ndim(), 6);
  NEOCPU_CHECK_EQ(output->ndim(), 5);
  NEOCPU_CHECK_LE(s.reg_n, kMaxRegN);
  NEOCPU_CHECK_LE(s.oc_bn, kMaxChannelBlock);
  NEOCPU_CHECK_LE(s.ic_bn, kMaxChannelBlock);
  NEOCPU_CHECK_EQ(input.dim(4), s.ic_bn);
  NEOCPU_CHECK_EQ(output->dim(4), s.oc_bn);
  NEOCPU_CHECK_EQ(weight.dim(4), s.ic_bn);
  NEOCPU_CHECK_EQ(weight.dim(5), s.oc_bn);
  NEOCPU_CHECK_EQ(p.in_c % s.ic_bn, 0);
  NEOCPU_CHECK_EQ(p.out_c % s.oc_bn, 0);
  NEOCPU_CHECK(!epilogue.bias || bias != nullptr);
  NEOCPU_CHECK(!epilogue.residual_add || residual != nullptr);

  ConvDims d;
  d.n = p.batch;
  d.icb_count = p.in_c / s.ic_bn;
  d.ih = p.in_h;
  d.iw = p.in_w;
  d.icb = s.ic_bn;
  d.ocb_count = p.out_c / s.oc_bn;
  d.oh = p.OutH();
  d.ow = p.OutW();
  d.ocb = s.oc_bn;
  d.kh = p.kernel_h;
  d.kw = p.kernel_w;
  d.sh = p.stride_h;
  d.sw = p.stride_w;
  d.ph = p.pad_h;
  d.pw = p.pad_w;
  d.in_sh = d.iw * d.icb;
  d.in_sc = d.ih * d.in_sh;
  d.in_sn = d.icb_count * d.in_sc;
  d.w_sc = d.kh * d.kw * d.icb * d.ocb;
  d.w_so = d.icb_count * d.w_sc;
  d.out_sh = d.ow * d.ocb;
  d.out_sc = d.oh * d.out_sh;
  d.out_sn = d.ocb_count * d.out_sc;

  const MicroFn fast = SelectMicro(d.ocb, s.reg_n, s.unroll_ker);
  const float* in_base = input.data();
  const float* w_base = weight.data();
  const float* bias_base = epilogue.bias ? bias->data() : nullptr;
  const float* res_base = epilogue.residual_add ? residual->data() : nullptr;
  float* out_base = output->data();
  const bool relu = epilogue.relu;

  // Interior out_width range where no horizontal padding check is needed:
  //   iw0 = ow*sw - pw >= 0          => ow >= ceil(pw / sw)
  //   iw_last = ow*sw - pw + kw - 1 < iw  => ow <= (iw + pw - kw) / sw
  const std::int64_t ow_lo = d.pw == 0 ? 0 : (d.pw + d.sw - 1) / d.sw;
  const std::int64_t ow_hi_incl = (d.iw + d.pw - d.kw) / d.sw;
  const std::int64_t ow_hi = std::min(d.ow, ow_hi_incl + 1);

  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);

  // "for each disjoint chunk of OFMAP do  . parallel" — chunks are (n, oc_block, oh) rows.
  const std::int64_t total_rows = d.n * d.ocb_count * d.oh;
  ParallelFor(eng, total_rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t oh = row % d.oh;
      const std::int64_t rest = row / d.oh;
      const std::int64_t oco = rest % d.ocb_count;
      const std::int64_t n = rest / d.ocb_count;

      const float* in_n = in_base + n * d.in_sn;
      const float* w_o = w_base + oco * d.w_so;
      const float* bias_o = bias_base != nullptr ? bias_base + oco * d.ocb : nullptr;
      float* out_row = out_base + n * d.out_sn + oco * d.out_sc + oh * d.out_sh;
      const float* res_row =
          res_base != nullptr ? res_base + n * d.out_sn + oco * d.out_sc + oh * d.out_sh
                              : nullptr;

      std::int64_t ow = 0;
      // Left edge (horizontal padding).
      if (ow < ow_lo) {
        const std::int64_t count = std::min(ow_lo, d.ow) - ow;
        for (std::int64_t c = 0; c < count; c += s.reg_n) {
          MicroEdge(d, in_n, w_o, bias_o, res_row, relu, oh, ow + c,
                    std::min<std::int64_t>(s.reg_n, count - c), out_row);
        }
        ow += count;
      }
      // Interior: full reg_n register blocks through the template instantiation.
      if (fast != nullptr) {
        while (ow + s.reg_n <= ow_hi) {
          fast(d, in_n, w_o, bias_o, res_row, relu, oh, ow, out_row);
          ow += s.reg_n;
        }
      }
      // Interior tail + right edge.
      while (ow < d.ow) {
        const std::int64_t count = std::min<std::int64_t>(s.reg_n, d.ow - ow);
        MicroEdge(d, in_n, w_o, bias_o, res_row, relu, oh, ow, count, out_row);
        ow += count;
      }
    }
  });
}

Tensor ConvNCHWcWithTransforms(const Conv2dParams& p, const ConvSchedule& s,
                               const Tensor& input_nchw, const Tensor& weight_oihw,
                               const Tensor* bias, const Tensor* residual_nchw,
                               const ConvEpilogue& epilogue, ThreadEngine* engine) {
  Tensor in_blocked = NCHWToNCHWc(input_nchw, s.ic_bn, engine);
  Tensor w_blocked = OIHWToOIHWio(weight_oihw, s.ic_bn, s.oc_bn);
  Tensor res_blocked;
  if (epilogue.residual_add) {
    NEOCPU_CHECK(residual_nchw != nullptr);
    res_blocked = NCHWToNCHWc(*residual_nchw, s.oc_bn, engine);
  }
  Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                             Layout::NCHWc(s.oc_bn));
  ConvNCHWc(p, s, in_blocked, w_blocked, bias, epilogue.residual_add ? &res_blocked : nullptr,
            epilogue, &out, engine);
  return NCHWcToNCHW(out, engine);
}

}  // namespace neocpu
