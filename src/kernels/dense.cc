#include "src/kernels/dense.h"

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {

void Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
           Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 2);
  NEOCPU_CHECK_EQ(weight.ndim(), 2);
  const std::int64_t n = input.dim(0);
  const std::int64_t in_dim = input.dim(1);
  const std::int64_t out_dim = weight.dim(0);
  NEOCPU_CHECK_EQ(weight.dim(1), in_dim);
  CheckKernelOutput(out, {n, out_dim}, Layout::Flat(), "dense");
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  const float* in_base = input.data();
  const float* w_base = weight.data();
  const float* b_base = bias != nullptr ? bias->data() : nullptr;
  float* out_base = out->data();

  for (std::int64_t ni = 0; ni < n; ++ni) {
    const float* x = in_base + ni * in_dim;
    float* y = out_base + ni * out_dim;
    ParallelFor(eng, out_dim, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t o = begin; o < end; ++o) {
        const float* __restrict w = w_base + o * in_dim;
        // 16 independent partial sums: the reduction vectorizes without requiring the
        // compiler to reassociate floating-point addition.
        float partial[16] = {};
        std::int64_t i = 0;
        for (; i + 16 <= in_dim; i += 16) {
#pragma omp simd
          for (int j = 0; j < 16; ++j) {  // SIMD dimension
            partial[j] += x[i + j] * w[i + j];
          }
        }
        float sum = 0.0f;
        for (; i < in_dim; ++i) {
          sum += x[i] * w[i];
        }
        for (int j = 0; j < 16; ++j) {
          sum += partial[j];
        }
        if (b_base != nullptr) {
          sum += b_base[o];
        }
        if (relu) {
          sum = sum > 0.0f ? sum : 0.0f;
        }
        y[o] = sum;
      }
    });
  }
}

Tensor Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
             ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), weight.dim(0)}, Layout::Flat());
  Dense(input, weight, bias, relu, &out, engine);
  return out;
}

void DenseS8(const Tensor& input, const Tensor& weight, const Tensor* bias,
             const Tensor& multiplier, bool relu, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 2);
  NEOCPU_CHECK_EQ(weight.ndim(), 2);
  NEOCPU_CHECK(input.dtype() == DType::kS8) << input.DebugString();
  NEOCPU_CHECK(weight.dtype() == DType::kS8) << weight.DebugString();
  NEOCPU_CHECK(bias == nullptr || bias->dtype() == DType::kS32);
  NEOCPU_CHECK(multiplier.dtype() == DType::kF32);
  const std::int64_t n = input.dim(0);
  const std::int64_t in_dim = input.dim(1);
  const std::int64_t out_dim = weight.dim(0);
  NEOCPU_CHECK_EQ(weight.dim(1), in_dim);
  NEOCPU_CHECK_EQ(multiplier.NumElements(), out_dim);
  CheckKernelOutput(out, {n, out_dim}, Layout::Flat(), "dense_s8");
  NEOCPU_CHECK(out->dtype() == DType::kF32) << out->DebugString();
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  const std::int8_t* in_base = input.data_as<std::int8_t>();
  const std::int8_t* w_base = weight.data_as<std::int8_t>();
  const std::int32_t* b_base = bias != nullptr ? bias->data_as<std::int32_t>() : nullptr;
  const float* m_base = multiplier.data_as<float>();
  float* out_base = out->data();

  for (std::int64_t ni = 0; ni < n; ++ni) {
    const std::int8_t* x = in_base + ni * in_dim;
    float* y = out_base + ni * out_dim;
    ParallelFor(eng, out_dim, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t o = begin; o < end; ++o) {
        const std::int8_t* __restrict w = w_base + o * in_dim;
        // 16 independent s32 partials vectorize the reduction; integer addition is
        // associative, so any lane split gives the same exact sum.
        std::int32_t partial[16] = {};
        std::int64_t i = 0;
        for (; i + 16 <= in_dim; i += 16) {
#pragma omp simd
          for (int j = 0; j < 16; ++j) {  // SIMD dimension
            partial[j] += static_cast<std::int32_t>(x[i + j]) * w[i + j];
          }
        }
        std::int32_t sum = 0;
        for (; i < in_dim; ++i) {
          sum += static_cast<std::int32_t>(x[i]) * w[i];
        }
        for (int j = 0; j < 16; ++j) {
          sum += partial[j];
        }
        if (b_base != nullptr) {
          sum += b_base[o];
        }
        if (relu && sum < 0) {
          sum = 0;
        }
        y[o] = static_cast<float>(sum) * m_base[o];
      }
    });
  }
}

Tensor DenseS8(const Tensor& input, const Tensor& weight, const Tensor* bias,
               const Tensor& multiplier, bool relu, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), weight.dim(0)}, Layout::Flat());
  DenseS8(input, weight, bias, multiplier, relu, &out, engine);
  return out;
}

}  // namespace neocpu
