// Baseline instantiation + operand packing + validation + runtime ISA dispatch of the
// packed u8·s8 GEMM. The baseline tile driver compiles at the library's portable ISA;
// wider variants live in gemm_packed_int8_avx{2,512,512vnni}.cc behind per-file flags,
// and this TU (always portable code itself) picks the widest one the running CPU
// supports. All tiers are bitwise-identical (see gemm_packed_int8_impl.h).
#define NEOCPU_GEMM_S8_VARIANT_NS gemm_s8_baseline
#define NEOCPU_GEMM_S8_TILE_FN GemmS8TileBaseline
#include "src/kernels/gemm_packed_int8_impl.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "src/base/logging.h"
#include "src/kernels/gemm_packed_int8.h"

namespace neocpu {
namespace detail {

#ifdef NEOCPU_GEMM_S8_HAVE_AVX2
void GemmS8TileAvx2(const GemmS8Args&, std::int64_t);
#endif
#ifdef NEOCPU_GEMM_S8_HAVE_AVX512
void GemmS8TileAvx512(const GemmS8Args&, std::int64_t);
#endif
#ifdef NEOCPU_GEMM_S8_HAVE_AVX512VNNI
void GemmS8TileAvx512Vnni(const GemmS8Args&, std::int64_t);
#endif

namespace {

struct GemmS8Dispatch {
  GemmS8TileFn fn = &GemmS8TileBaseline;
  const char* name = "baseline";
};

struct GemmS8Tiers {
  GemmS8Dispatch tiers[4];
  int count = 0;
};

GemmS8Tiers EnumerateTiers() {
  GemmS8Tiers t;
#if defined(__x86_64__) && defined(__GNUC__)
  __builtin_cpu_init();
#ifdef NEOCPU_GEMM_S8_HAVE_AVX512VNNI
  if (__builtin_cpu_supports("avx512vnni") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq")) {
    t.tiers[t.count++] = {&GemmS8TileAvx512Vnni, "avx512vnni"};
  }
#endif
#ifdef NEOCPU_GEMM_S8_HAVE_AVX512
  if (__builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq")) {
    t.tiers[t.count++] = {&GemmS8TileAvx512, "avx512"};
  }
#endif
#ifdef NEOCPU_GEMM_S8_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    t.tiers[t.count++] = {&GemmS8TileAvx2, "avx2"};
  }
#endif
#endif
  t.tiers[t.count++] = {&GemmS8TileBaseline, "baseline"};
  return t;
}

const GemmS8Tiers& Tiers() {
  static const GemmS8Tiers t = EnumerateTiers();
  return t;
}

int g_isa_override = -1;

const GemmS8Dispatch& Dispatch() {
  const GemmS8Tiers& t = Tiers();
  const int at = g_isa_override >= 0 ? g_isa_override : 0;
  return t.tiers[at];
}

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace
}  // namespace detail

const char* GemmPackedS8IsaName() { return detail::Dispatch().name; }

bool SetGemmPackedS8IsaOverride(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    detail::g_isa_override = -1;
    return true;
  }
  const detail::GemmS8Tiers& t = detail::Tiers();
  for (int i = 0; i < t.count; ++i) {
    if (std::string_view(t.tiers[i].name) == name) {
      detail::g_isa_override = i;
      return true;
    }
  }
  return false;
}

std::size_t PackedAU8Bytes(std::int64_t m, std::int64_t k, const GemmSchedule& s) {
  return static_cast<std::size_t>(detail::CeilDiv(m, s.mr) * s.mr * detail::CeilDiv(k, 4) * 4);
}

std::size_t PackedBS8Bytes(std::int64_t n, std::int64_t k, const GemmSchedule& s) {
  return static_cast<std::size_t>(detail::CeilDiv(n, s.nr) * s.nr * detail::CeilDiv(k, 4) * 4);
}

void PackAU8(const std::uint8_t* a, std::int64_t m, std::int64_t k,
             const GemmSchedule& s, std::uint8_t* out, ThreadEngine* engine) {
  const std::int64_t mr = s.mr;
  const std::int64_t kq = detail::CeilDiv(k, 4);
  const std::int64_t panels = detail::CeilDiv(m, mr);
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  ParallelFor(eng, panels, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      std::uint8_t* dst = out + p * kq * mr * 4;
      const std::int64_t rows = mr < m - p * mr ? mr : m - p * mr;
      for (std::int64_t q = 0; q < kq; ++q) {
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::uint8_t* src =
              r < rows ? a + (p * mr + r) * k + q * 4 : nullptr;
          const std::int64_t take = src != nullptr
                                        ? (k - q * 4 < 4 ? k - q * 4 : 4)
                                        : 0;
          std::uint8_t* d = dst + (q * mr + r) * 4;
          for (std::int64_t b = 0; b < 4; ++b) {
            d[b] = b < take ? src[b] : 0;
          }
        }
      }
    }
  });
}

void PackBS8FromTransposed(const std::int8_t* w, std::int64_t n, std::int64_t k,
                           const GemmSchedule& s, std::int8_t* out) {
  const std::int64_t nr = s.nr;
  const std::int64_t kq = detail::CeilDiv(k, 4);
  const std::int64_t panels = detail::CeilDiv(n, nr);
  for (std::int64_t p = 0; p < panels; ++p) {
    std::int8_t* dst = out + p * kq * nr * 4;
    const std::int64_t cols = nr < n - p * nr ? nr : n - p * nr;
    for (std::int64_t q = 0; q < kq; ++q) {
      const std::int64_t take = k - q * 4 < 4 ? k - q * 4 : 4;
      for (std::int64_t j = 0; j < nr; ++j) {
        const std::int8_t* src = j < cols ? w + (p * nr + j) * k + q * 4 : nullptr;
        std::int8_t* d = dst + (q * nr + j) * 4;
        for (std::int64_t b = 0; b < 4; ++b) {
          d[b] = (src != nullptr && b < take) ? src[b] : 0;
        }
      }
    }
  }
}

void GemmPackedU8S8(std::int64_t m, std::int64_t n, std::int64_t k,
                    const std::uint8_t* a, const std::int8_t* packed_b,
                    const std::int32_t* bias, const float* mult, bool relu,
                    bool requant, bool out_u8, std::int32_t out_zero, void* c,
                    const GemmSchedule& s, std::uint8_t* workspace,
                    ThreadEngine* engine) {
  NEOCPU_CHECK(m > 0 && n > 0 && k > 0);
  NEOCPU_CHECK(s.mc > 0 && s.nc > 0);
  NEOCPU_CHECK(s.mr > 0 && s.mr <= kMaxGemmMr) << s.ToString();
  NEOCPU_CHECK(s.nr > 0 && s.nr <= kMaxGemmNr) << s.ToString();
  NEOCPU_CHECK(mult != nullptr);
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);

  std::vector<std::uint8_t> owned;  // fallback when no planned workspace is supplied
  std::uint8_t* ap = workspace;
  if (ap == nullptr) {
    owned.resize(PackedAU8Bytes(m, k, s));
    ap = owned.data();
  }
  PackAU8(a, m, k, s, ap, &eng);

  detail::GemmS8Args args;
  args.m = m;
  args.n = n;
  args.k = k;
  args.kq = detail::CeilDiv(k, 4);
  // Macro tiles must start on packed-panel boundaries (see gemm_packed.cc).
  args.mc = detail::CeilDiv(s.mc, s.mr) * s.mr;
  args.nc = detail::CeilDiv(s.nc, s.nr) * s.nr;
  args.mr = s.mr;
  args.nr = s.nr;
  args.nb_count = detail::CeilDiv(n, args.nc);
  args.ap = ap;
  args.bp = packed_b;
  args.bias = bias;
  args.mult = mult;
  args.relu = relu;
  args.requant = requant;
  args.out_u8 = requant && out_u8;
  args.out_zero = requant && out_u8 ? out_zero : 0;
  args.c = c;

  const detail::GemmS8TileFn tile_fn = detail::Dispatch().fn;
  const std::int64_t tiles = detail::CeilDiv(m, args.mc) * args.nb_count;
  ParallelFor(eng, tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t tile = begin; tile < end; ++tile) {
      tile_fn(args, tile);
    }
  });
}

}  // namespace neocpu
