// AVX-512 VNNI instantiation of the packed u8·s8 GEMM tile driver: the quad
// accumulation lowers to one vpdpbusd per 16 columns. Compiled with
// -mavx512{f,bw,vl,dq,vnni} (see CMakeLists.txt); entered only after the dispatcher's
// cpuid check.
#define NEOCPU_GEMM_S8_VARIANT_NS gemm_s8_avx512vnni
#define NEOCPU_GEMM_S8_TILE_FN GemmS8TileAvx512Vnni
#include "src/kernels/gemm_packed_int8_impl.h"
