#include "src/kernels/pooling.h"

#include <algorithm>
#include <limits>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

}  // namespace

std::int64_t Pool2dParams::OutDim(std::int64_t in, std::int64_t k, std::int64_t s,
                                  std::int64_t p) const {
  const std::int64_t numer = in + 2 * p - k;
  if (ceil_mode) {
    return (numer + s - 1) / s + 1;
  }
  return numer / s + 1;
}

void PoolNCHW(const Pool2dParams& p, const Tensor& input, Tensor* out,
              ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), ih = input.dim(2), iw = input.dim(3);
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  CheckKernelOutput(out, {n, c, oh, ow}, Layout::NCHW(), "pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* in_ch = in_base + idx * ih * iw;
      float* out_ch = out_base + idx * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          const std::int64_t h0 = y * p.stride_h - p.pad_h;
          const std::int64_t w0 = x * p.stride_w - p.pad_w;
          const std::int64_t h1 = std::min(h0 + p.kernel_h, ih);
          const std::int64_t w1 = std::min(w0 + p.kernel_w, iw);
          const std::int64_t hc = std::max<std::int64_t>(h0, 0);
          const std::int64_t wc = std::max<std::int64_t>(w0, 0);
          if (p.type == PoolType::kMax) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                best = std::max(best, in_ch[hh * iw + ww]);
              }
            }
            out_ch[y * ow + x] = best;
          } else {
            float sum = 0.0f;
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                sum += in_ch[hh * iw + ww];
              }
            }
            const std::int64_t count = p.count_include_pad
                                           ? p.kernel_h * p.kernel_w
                                           : std::max<std::int64_t>((h1 - hc) * (w1 - wc), 1);
            // Multiply by the reciprocal (not divide) so both layout variants of the
            // kernel produce bit-identical results.
            out_ch[y * ow + x] = sum * (1.0f / static_cast<float>(count));
          }
        }
      }
    }
  });
}

Tensor PoolNCHW(const Pool2dParams& p, const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(
      {input.dim(0), input.dim(1), p.OutH(input.dim(2)), p.OutW(input.dim(3))},
      Layout::NCHW());
  PoolNCHW(p, input, &out, engine);
  return out;
}

void PoolNCHWc(const Pool2dParams& p, const Tensor& input, Tensor* out,
               ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  const std::int64_t n = input.dim(0), cb = input.dim(1), ih = input.dim(2), iw = input.dim(3),
                     x = input.dim(4);
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  CheckKernelOutput(out, {n, cb, oh, ow, x}, input.layout(), "pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* in_ch = in_base + idx * ih * iw * x;
      float* out_ch = out_base + idx * oh * ow * x;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx) {
          const std::int64_t h0 = y * p.stride_h - p.pad_h;
          const std::int64_t w0 = xx * p.stride_w - p.pad_w;
          const std::int64_t h1 = std::min(h0 + p.kernel_h, ih);
          const std::int64_t w1 = std::min(w0 + p.kernel_w, iw);
          const std::int64_t hc = std::max<std::int64_t>(h0, 0);
          const std::int64_t wc = std::max<std::int64_t>(w0, 0);
          float* dst = out_ch + (y * ow + xx) * x;
          if (p.type == PoolType::kMax) {
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] = -std::numeric_limits<float>::infinity();
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const float* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  dst[ci] = std::max(dst[ci], src[ci]);
                }
              }
            }
          } else {
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] = 0.0f;
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const float* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  dst[ci] += src[ci];
                }
              }
            }
            const std::int64_t count = p.count_include_pad
                                           ? p.kernel_h * p.kernel_w
                                           : std::max<std::int64_t>((h1 - hc) * (w1 - wc), 1);
            const float inv = 1.0f / static_cast<float>(count);
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] *= inv;
            }
          }
        }
      }
    }
  });
}

Tensor PoolNCHWc(const Pool2dParams& p, const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), input.dim(1), p.OutH(input.dim(2)),
                              p.OutW(input.dim(3)), input.dim(4)},
                             input.layout());
  PoolNCHWc(p, input, &out, engine);
  return out;
}

void GlobalAvgPoolNCHW(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  CheckKernelOutput(out, {n, c, 1, 1}, Layout::NCHW(), "global_avg_pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* src = in_base + idx * plane;
      float sum = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) {
        sum += src[i];
      }
      out_base[idx] = sum / static_cast<float>(plane);
    }
  });
}

Tensor GlobalAvgPoolNCHW(const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), input.dim(1), 1, 1}, Layout::NCHW());
  GlobalAvgPoolNCHW(input, &out, engine);
  return out;
}

void GlobalAvgPoolNCHWc(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  const std::int64_t n = input.dim(0), cb = input.dim(1), plane = input.dim(2) * input.dim(3),
                     x = input.dim(4);
  CheckKernelOutput(out, {n, cb, 1, 1, x}, input.layout(), "global_avg_pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* src = in_base + idx * plane * x;
      float* dst = out_base + idx * x;
      for (std::int64_t ci = 0; ci < x; ++ci) {
        dst[ci] = 0.0f;
      }
      for (std::int64_t i = 0; i < plane; ++i) {
        for (std::int64_t ci = 0; ci < x; ++ci) {
          dst[ci] += src[i * x + ci];
        }
      }
      const float inv = 1.0f / static_cast<float>(plane);
      for (std::int64_t ci = 0; ci < x; ++ci) {
        dst[ci] *= inv;
      }
    }
  });
}

Tensor GlobalAvgPoolNCHWc(const Tensor& input, ThreadEngine* engine) {
  Tensor out =
      Tensor::Empty({input.dim(0), input.dim(1), 1, 1, input.dim(4)}, input.layout());
  GlobalAvgPoolNCHWc(input, &out, engine);
  return out;
}

}  // namespace neocpu
