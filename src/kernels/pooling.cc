#include "src/kernels/pooling.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

// Channel-block ceiling of the schedule space (== kMaxChannelBlock); bounds the
// integer pool's stack accumulator.
constexpr std::int64_t kMaxPoolBlock = 64;

}  // namespace

std::int64_t Pool2dParams::OutDim(std::int64_t in, std::int64_t k, std::int64_t s,
                                  std::int64_t p) const {
  const std::int64_t numer = in + 2 * p - k;
  if (ceil_mode) {
    return (numer + s - 1) / s + 1;
  }
  return numer / s + 1;
}

void PoolNCHW(const Pool2dParams& p, const Tensor& input, Tensor* out,
              ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), ih = input.dim(2), iw = input.dim(3);
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  CheckKernelOutput(out, {n, c, oh, ow}, Layout::NCHW(), "pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* in_ch = in_base + idx * ih * iw;
      float* out_ch = out_base + idx * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          const std::int64_t h0 = y * p.stride_h - p.pad_h;
          const std::int64_t w0 = x * p.stride_w - p.pad_w;
          const std::int64_t h1 = std::min(h0 + p.kernel_h, ih);
          const std::int64_t w1 = std::min(w0 + p.kernel_w, iw);
          const std::int64_t hc = std::max<std::int64_t>(h0, 0);
          const std::int64_t wc = std::max<std::int64_t>(w0, 0);
          if (p.type == PoolType::kMax) {
            float best = -std::numeric_limits<float>::infinity();
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                best = std::max(best, in_ch[hh * iw + ww]);
              }
            }
            out_ch[y * ow + x] = best;
          } else {
            float sum = 0.0f;
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                sum += in_ch[hh * iw + ww];
              }
            }
            const std::int64_t count = p.count_include_pad
                                           ? p.kernel_h * p.kernel_w
                                           : std::max<std::int64_t>((h1 - hc) * (w1 - wc), 1);
            // Multiply by the reciprocal (not divide) so both layout variants of the
            // kernel produce bit-identical results.
            out_ch[y * ow + x] = sum * (1.0f / static_cast<float>(count));
          }
        }
      }
    }
  });
}

Tensor PoolNCHW(const Pool2dParams& p, const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(
      {input.dim(0), input.dim(1), p.OutH(input.dim(2)), p.OutW(input.dim(3))},
      Layout::NCHW());
  PoolNCHW(p, input, &out, engine);
  return out;
}

void PoolNCHWc(const Pool2dParams& p, const Tensor& input, Tensor* out,
               ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  const std::int64_t n = input.dim(0), cb = input.dim(1), ih = input.dim(2), iw = input.dim(3),
                     x = input.dim(4);
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  CheckKernelOutput(out, {n, cb, oh, ow, x}, input.layout(), "pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* in_ch = in_base + idx * ih * iw * x;
      float* out_ch = out_base + idx * oh * ow * x;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx) {
          const std::int64_t h0 = y * p.stride_h - p.pad_h;
          const std::int64_t w0 = xx * p.stride_w - p.pad_w;
          const std::int64_t h1 = std::min(h0 + p.kernel_h, ih);
          const std::int64_t w1 = std::min(w0 + p.kernel_w, iw);
          const std::int64_t hc = std::max<std::int64_t>(h0, 0);
          const std::int64_t wc = std::max<std::int64_t>(w0, 0);
          float* dst = out_ch + (y * ow + xx) * x;
          if (p.type == PoolType::kMax) {
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] = -std::numeric_limits<float>::infinity();
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const float* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  dst[ci] = std::max(dst[ci], src[ci]);
                }
              }
            }
          } else {
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] = 0.0f;
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const float* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  dst[ci] += src[ci];
                }
              }
            }
            const std::int64_t count = p.count_include_pad
                                           ? p.kernel_h * p.kernel_w
                                           : std::max<std::int64_t>((h1 - hc) * (w1 - wc), 1);
            const float inv = 1.0f / static_cast<float>(count);
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] *= inv;
            }
          }
        }
      }
    }
  });
}

Tensor PoolNCHWc(const Pool2dParams& p, const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), input.dim(1), p.OutH(input.dim(2)),
                              p.OutW(input.dim(3)), input.dim(4)},
                             input.layout());
  PoolNCHWc(p, input, &out, engine);
  return out;
}

namespace {

// `chans` is N * C/x (or N * C with x == 1 for the plain NCHW layout — the channel
// walk is the same with a one-wide block).
template <typename Q>
void PoolNCHWcIntImpl(const Pool2dParams& p, const Tensor& input, std::int64_t chans,
                      std::int64_t ih, std::int64_t iw, std::int64_t x, std::int32_t zp,
                      Tensor* out, ThreadEngine* engine) {
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  const Q* in_base = reinterpret_cast<const Q*>(input.data());
  Q* out_base = reinterpret_cast<Q*>(out->data());
  constexpr std::int32_t kLo = std::numeric_limits<Q>::min();
  constexpr std::int32_t kHi = std::numeric_limits<Q>::max();
  ParallelFor(Engine(engine), chans, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const Q* in_ch = in_base + idx * ih * iw * x;
      Q* out_ch = out_base + idx * oh * ow * x;
      std::int32_t acc[kMaxPoolBlock];
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xx = 0; xx < ow; ++xx) {
          const std::int64_t h0 = y * p.stride_h - p.pad_h;
          const std::int64_t w0 = xx * p.stride_w - p.pad_w;
          const std::int64_t h1 = std::min(h0 + p.kernel_h, ih);
          const std::int64_t w1 = std::min(w0 + p.kernel_w, iw);
          const std::int64_t hc = std::max<std::int64_t>(h0, 0);
          const std::int64_t wc = std::max<std::int64_t>(w0, 0);
          Q* dst = out_ch + (y * ow + xx) * x;
          if (p.type == PoolType::kMax) {
            for (std::int64_t ci = 0; ci < x; ++ci) {
              acc[ci] = kLo;
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const Q* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  acc[ci] = std::max(acc[ci], static_cast<std::int32_t>(src[ci]));
                }
              }
            }
            for (std::int64_t ci = 0; ci < x; ++ci) {
              dst[ci] = static_cast<Q>(acc[ci]);
            }
          } else {
            const std::int64_t valid = (h1 - hc) * (w1 - wc);
            const std::int64_t count =
                p.count_include_pad ? p.kernel_h * p.kernel_w
                                    : std::max<std::int64_t>(valid, 1);
            // Padded cells hold a true f32 zero, i.e. the quantized zero point.
            const std::int32_t pad_sum =
                static_cast<std::int32_t>(count - valid) * zp;
            for (std::int64_t ci = 0; ci < x; ++ci) {
              acc[ci] = pad_sum;
            }
            for (std::int64_t hh = hc; hh < h1; ++hh) {
              for (std::int64_t ww = wc; ww < w1; ++ww) {
                const Q* src = in_ch + (hh * iw + ww) * x;
                for (std::int64_t ci = 0; ci < x; ++ci) {
                  acc[ci] += static_cast<std::int32_t>(src[ci]);
                }
              }
            }
            const double inv = 1.0 / static_cast<double>(count);
            for (std::int64_t ci = 0; ci < x; ++ci) {
              const std::int32_t q =
                  static_cast<std::int32_t>(std::llrint(acc[ci] * inv));
              dst[ci] = static_cast<Q>(std::clamp(q, kLo, kHi));
            }
          }
        }
      }
    }
  });
}

}  // namespace

void PoolNCHWcInt(const Pool2dParams& p, const Tensor& input, std::int32_t zero_point,
                  Tensor* out, ThreadEngine* engine) {
  const bool blocked = input.ndim() == 5;
  NEOCPU_CHECK(blocked || input.ndim() == 4) << input.DebugString();
  const std::int64_t x = blocked ? input.dim(4) : 1;
  NEOCPU_CHECK_LE(x, kMaxPoolBlock);
  const std::int64_t n = input.dim(0), cb = input.dim(1);
  const std::int64_t ih = input.dim(2), iw = input.dim(3);
  const std::int64_t oh = p.OutH(ih), ow = p.OutW(iw);
  if (blocked) {
    CheckKernelOutput(out, {n, cb, oh, ow, x}, input.layout(), "pool_int");
  } else {
    CheckKernelOutput(out, {n, cb, oh, ow}, input.layout(), "pool_int");
  }
  NEOCPU_CHECK(out->dtype() == input.dtype())
      << "integer pooling keeps the input dtype: " << out->DebugString();
  if (input.dtype() == DType::kS8) {
    PoolNCHWcIntImpl<std::int8_t>(p, input, n * cb, ih, iw, x, zero_point, out, engine);
  } else {
    NEOCPU_CHECK(input.dtype() == DType::kU8) << input.DebugString();
    PoolNCHWcIntImpl<std::uint8_t>(p, input, n * cb, ih, iw, x, zero_point, out,
                                   engine);
  }
}

Tensor PoolNCHWcInt(const Pool2dParams& p, const Tensor& input, std::int32_t zero_point,
                    ThreadEngine* engine) {
  Tensor out =
      input.ndim() == 5
          ? Tensor::Empty({input.dim(0), input.dim(1), p.OutH(input.dim(2)),
                           p.OutW(input.dim(3)), input.dim(4)},
                          input.layout(), input.dtype())
          : Tensor::Empty({input.dim(0), input.dim(1), p.OutH(input.dim(2)),
                           p.OutW(input.dim(3))},
                          input.layout(), input.dtype());
  PoolNCHWcInt(p, input, zero_point, &out, engine);
  return out;
}

void GlobalAvgPoolNCHW(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  CheckKernelOutput(out, {n, c, 1, 1}, Layout::NCHW(), "global_avg_pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* src = in_base + idx * plane;
      float sum = 0.0f;
      for (std::int64_t i = 0; i < plane; ++i) {
        sum += src[i];
      }
      out_base[idx] = sum / static_cast<float>(plane);
    }
  });
}

Tensor GlobalAvgPoolNCHW(const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(0), input.dim(1), 1, 1}, Layout::NCHW());
  GlobalAvgPoolNCHW(input, &out, engine);
  return out;
}

void GlobalAvgPoolNCHWc(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  const std::int64_t n = input.dim(0), cb = input.dim(1), plane = input.dim(2) * input.dim(3),
                     x = input.dim(4);
  CheckKernelOutput(out, {n, cb, 1, 1, x}, input.layout(), "global_avg_pool");
  const float* in_base = input.data();
  float* out_base = out->data();
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const float* src = in_base + idx * plane * x;
      float* dst = out_base + idx * x;
      for (std::int64_t ci = 0; ci < x; ++ci) {
        dst[ci] = 0.0f;
      }
      for (std::int64_t i = 0; i < plane; ++i) {
        for (std::int64_t ci = 0; ci < x; ++ci) {
          dst[ci] += src[i * x + ci];
        }
      }
      const float inv = 1.0f / static_cast<float>(plane);
      for (std::int64_t ci = 0; ci < x; ++ci) {
        dst[ci] *= inv;
      }
    }
  });
}

Tensor GlobalAvgPoolNCHWc(const Tensor& input, ThreadEngine* engine) {
  Tensor out =
      Tensor::Empty({input.dim(0), input.dim(1), 1, 1, input.dim(4)}, input.layout());
  GlobalAvgPoolNCHWc(input, &out, engine);
  return out;
}

}  // namespace neocpu
