// Tuned, packed u8·s8→s32 GEMM with the fused integer epilogue (zero-point-folded s32
// bias, integer ReLU, per-column multiplier, optional requantizing s8/u8 store) — the
// quantized counterpart of gemm_packed.h for the tuned Dense path. Operands are
// quad-packed ([..][ceil(k/4)][..][4]) so every ISA tier — portable s32 quads,
// AVX-512 VNNI vpdpbusd on the widest — accumulates identically (bitwise-equal
// outputs). The whole K reduction stays in registers, so there is no s32 staging
// buffer and the schedule's kc is ignored (clamped to k).
#ifndef NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_H_
#define NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_H_

#include <cstddef>
#include <cstdint>

#include "src/kernels/gemm_schedule.h"
#include "src/runtime/thread_engine.h"

namespace neocpu {

// Packed-operand sizes in bytes. Panels are zero-padded to full mr/nr and k to quads;
// pad bytes multiply pad bytes, so they contribute nothing to the s32 accumulators.
std::size_t PackedAU8Bytes(std::int64_t m, std::int64_t k, const GemmSchedule& s);
std::size_t PackedBS8Bytes(std::int64_t n, std::int64_t k, const GemmSchedule& s);

// Packs row-major u8 A[m][k] into quad panels [ceil(m/mr)][ceil(k/4)][mr][4].
void PackAU8(const std::uint8_t* a, std::int64_t m, std::int64_t k,
             const GemmSchedule& s, std::uint8_t* out, ThreadEngine* engine = nullptr);
// Packs the transposed s8 source W[n][k] (a dense layer's quantized {Out, In} weight)
// into quad panels [ceil(n/nr)][ceil(k/4)][nr][4].
void PackBS8FromTransposed(const std::int8_t* w, std::int64_t n, std::int64_t k,
                           const GemmSchedule& s, std::int8_t* out);

// Active ISA tier name ("baseline", "avx2", "avx512", "avx512vnni") and the override
// hook (parity tests, bench ablations). Empty/null resets to auto.
const char* GemmPackedS8IsaName();
bool SetGemmPackedS8IsaOverride(const char* name);

// C[m][n] from u8 A[m][k] (raw rows, packed internally into `workspace`) and packed s8
// B. bias is the zero-point-folded s32 bias (null for none); mult the per-column
// multiplier (length n). requant=false stores f32; requant=true stores s8, or u8 with
// out_zero when out_u8 is set. `workspace` holds the packed A quads (PackedAU8Bytes);
// null allocates internally (bench/test convenience).
void GemmPackedU8S8(std::int64_t m, std::int64_t n, std::int64_t k,
                    const std::uint8_t* a, const std::int8_t* packed_b,
                    const std::int32_t* bias, const float* mult, bool relu,
                    bool requant, bool out_u8, std::int32_t out_zero, void* c,
                    const GemmSchedule& s, std::uint8_t* workspace = nullptr,
                    ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_H_
