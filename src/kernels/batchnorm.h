// Inference-time batch normalization.
//
// At inference BN is a per-channel affine transform y = x * scale + shift with
//   scale = gamma / sqrt(var + eps), shift = beta - mean * scale.
// The compiler folds BN into an adjacent convolution whenever possible (inference
// simplification); these kernels execute the cases that cannot fold (e.g. DenseNet's
// BN→ReLU→Conv pre-activation blocks), optionally fusing the trailing ReLU.
#ifndef NEOCPU_SRC_KERNELS_BATCHNORM_H_
#define NEOCPU_SRC_KERNELS_BATCHNORM_H_

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Computes the folded (scale, shift) pair from BN statistics. All inputs are flat {C}.
void ComputeBnScaleShift(const Tensor& gamma, const Tensor& beta, const Tensor& mean,
                         const Tensor& var, float epsilon, Tensor* scale, Tensor* shift);

// input NCHW {N,C,H,W}; scale/shift flat {C}. The into-form writes a preallocated
// output (arena view on the memory-planned path).
Tensor ScaleShiftNCHW(const Tensor& input, const Tensor& scale, const Tensor& shift, bool relu,
                      ThreadEngine* engine = nullptr);
void ScaleShiftNCHW(const Tensor& input, const Tensor& scale, const Tensor& shift, bool relu,
                    Tensor* out, ThreadEngine* engine = nullptr);

// input NCHW[x]c {N,C/x,H,W,x}; scale/shift flat {C}.
Tensor ScaleShiftNCHWc(const Tensor& input, const Tensor& scale, const Tensor& shift,
                       bool relu, ThreadEngine* engine = nullptr);
void ScaleShiftNCHWc(const Tensor& input, const Tensor& scale, const Tensor& shift,
                     bool relu, Tensor* out, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_BATCHNORM_H_
