// Implementation body of the packed u8·s8→s32 GEMM macro-tile driver, compiled once
// per ISA variant: the including translation unit defines NEOCPU_GEMM_S8_VARIANT_NS
// (a unique namespace) and NEOCPU_GEMM_S8_TILE_FN (the exported macro-tile driver
// symbol), then includes this header. Same ODR rules as gemm_packed_impl.h: raw-pointer
// arithmetic on the POD argument block only.
//
// Both operands are quad-packed so 4 consecutive K values are byte-adjacent:
// A is [ceil(m/mr)][ceil(k/4)][mr][4] u8, B is [ceil(n/nr)][ceil(k/4)][nr][4] s8,
// zero-padded in both the panel and quad tails (pad bytes multiply pad bytes, so they
// contribute nothing — the u8 zero-point correction is pre-folded into the s32 bias
// over the true k only). A u8·s8 product reaches 255*127, so the s16 pairwise trick of
// the int8 conv would overflow on a pair sum; the portable tiers therefore accumulate
// every 4-product quad directly in s32 (exact), and the AVX-512 VNNI tier lowers the
// identical quad to one vpdpbusd whose internal widening is also exact — every tier
// produces bitwise-identical s32 accumulators, and the whole K reduction stays in
// registers (single K pass), so the fused requantizing epilogue needs no s32 staging.
#ifndef NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_IMPL_COMMON_
#define NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_IMPL_COMMON_

#include <cmath>
#include <cstdint>

#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
#include <immintrin.h>
#endif

#include "src/kernels/gemm_schedule.h"

namespace neocpu {
namespace detail {

// Resolved dims, blocking and fused-epilogue description; plain data only.
struct GemmS8Args {
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t kq = 0;  // ceil(k/4): quad count per packed panel
  std::int64_t mc = 0, nc = 0, mr = 0, nr = 0;
  std::int64_t nb_count = 0;  // ceil(n/nc): macro-tile index = ib * nb_count + jb
  const std::uint8_t* ap = nullptr;  // quad-packed A panels
  const std::int8_t* bp = nullptr;   // quad-packed B panels
  const std::int32_t* bias = nullptr;  // zero-point-folded s32 bias, length n; null ok
  const float* mult = nullptr;  // per-column dequant/requant multiplier, length n
  bool relu = false;
  bool requant = false;  // true: c is s8/u8; false: c is f32
  bool out_u8 = false;   // requantized output dtype is u8 (else s8)
  std::int32_t out_zero = 0;  // output zero point (u8 requant only)
  void* c = nullptr;          // row-major [m][n]
};

using GemmS8TileFn = void (*)(const GemmS8Args&, std::int64_t tile);

}  // namespace detail
}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_PACKED_INT8_IMPL_COMMON_

namespace neocpu {
namespace detail {
namespace NEOCPU_GEMM_S8_VARIANT_NS {

// Register micro-kernel: an mr x nr s32 accumulator tile over the full quad-packed K
// of one A row panel and one B column panel. Results land in out_acc[r * NR + j]; the
// epilogue store is separate (StoreTileS8) so the VNNI and portable paths share it.
template <int MR, int NR>
void MicroU8(const GemmS8Args& a, const std::uint8_t* __restrict ap,
             const std::int8_t* __restrict bp, std::int32_t* __restrict out_acc) {
#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  if constexpr (NR % 16 == 0) {
    constexpr int NV = NR / 16;
    __m512i acc[MR][NV];
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < NV; ++v) {
        acc[r][v] = _mm512_setzero_si512();
      }
    }
    for (std::int64_t q = 0; q < a.kq; ++q) {
      // One [nr][4] B quad tile = NV contiguous 64-byte vectors.
      const std::int8_t* __restrict bt = bp + q * NR * 4;
      __m512i b[NV];
      for (int v = 0; v < NV; ++v) {
        b[v] = _mm512_loadu_si512(bt + v * 64);
      }
      const std::uint8_t* __restrict at = ap + q * MR * 4;
#pragma GCC unroll 8
      for (int r = 0; r < MR; ++r) {
        std::uint32_t quad;
        __builtin_memcpy(&quad, at + r * 4, 4);
        const __m512i av = _mm512_set1_epi32(static_cast<int>(quad));
        for (int v = 0; v < NV; ++v) {
          acc[r][v] = _mm512_dpbusd_epi32(acc[r][v], av, b[v]);
        }
      }
    }
    for (int r = 0; r < MR; ++r) {
      for (int v = 0; v < NV; ++v) {
        _mm512_storeu_si512(out_acc + r * NR + v * 16, acc[r][v]);
      }
    }
    return;
  }
#endif  // __AVX512VNNI__ && __AVX512VL__

  std::int32_t acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
#pragma omp simd
    for (int j = 0; j < NR; ++j) {
      acc[r][j] = 0;
    }
  }
  for (std::int64_t q = 0; q < a.kq; ++q) {
    const std::int8_t* __restrict bt = bp + q * NR * 4;
    const std::uint8_t* __restrict at = ap + q * MR * 4;
#pragma GCC unroll 8
    for (int r = 0; r < MR; ++r) {
      const std::int32_t a0 = at[r * 4];
      const std::int32_t a1 = at[r * 4 + 1];
      const std::int32_t a2 = at[r * 4 + 2];
      const std::int32_t a3 = at[r * 4 + 3];
#pragma omp simd
      for (int j = 0; j < NR; ++j) {
        acc[r][j] += a0 * bt[j * 4] + a1 * bt[j * 4 + 1] + a2 * bt[j * 4 + 2] +
                     a3 * bt[j * 4 + 3];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
#pragma omp simd
    for (int j = 0; j < NR; ++j) {
      out_acc[r * NR + j] = acc[r][j];
    }
  }
}

// Generic guarded micro-kernel: runtime mr/nr for blocking pairs outside the template
// instantiation grid. Accumulators land in out_acc[r * nr + j].
inline void MicroEdgeU8(const GemmS8Args& a, const std::uint8_t* ap,
                        const std::int8_t* bp, std::int32_t* out_acc) {
  const std::int64_t mr = a.mr;
  const std::int64_t nr = a.nr;
  for (std::int64_t i = 0; i < mr * nr; ++i) {
    out_acc[i] = 0;
  }
  for (std::int64_t q = 0; q < a.kq; ++q) {
    const std::int8_t* bt = bp + q * nr * 4;
    const std::uint8_t* at = ap + q * mr * 4;
    for (std::int64_t r = 0; r < mr; ++r) {
      const std::int32_t a0 = at[r * 4];
      const std::int32_t a1 = at[r * 4 + 1];
      const std::int32_t a2 = at[r * 4 + 2];
      const std::int32_t a3 = at[r * 4 + 3];
      for (std::int64_t j = 0; j < nr; ++j) {
        out_acc[r * nr + j] += a0 * bt[j * 4] + a1 * bt[j * 4 + 1] +
                               a2 * bt[j * 4 + 2] + a3 * bt[j * 4 + 3];
      }
    }
  }
}

// Epilogue for one micro tile at C(i0, j0): bias add, integer ReLU, per-column scale,
// store to s8/u8 (requant) or f32 (dequant). rows/cols guard the padded tile edges.
inline void StoreTileS8(const GemmS8Args& a, const std::int32_t* acc, std::int64_t i0,
                        std::int64_t j0, std::int64_t rows, std::int64_t cols) {
  const std::int64_t nr = a.nr;
  const std::int32_t* bias_j = a.bias != nullptr ? a.bias + j0 : nullptr;
  const float* mult_j = a.mult + j0;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t at0 = (i0 + r) * a.n + j0;
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int32_t v = acc[r * nr + j];
      if (bias_j != nullptr) {
        v += bias_j[j];
      }
      if (a.relu && v < 0) {
        v = 0;
      }
      const float scaled = static_cast<float>(v) * mult_j[j];
      if (a.requant) {
        std::int32_t q = static_cast<std::int32_t>(std::lrintf(scaled));
        if (a.out_u8) {
          q += a.out_zero;
          q = q > 255 ? 255 : (q < 0 ? 0 : q);
          static_cast<std::uint8_t*>(a.c)[at0 + j] = static_cast<std::uint8_t>(q);
        } else {
          q = q > 127 ? 127 : (q < -127 ? -127 : q);
          static_cast<std::int8_t*>(a.c)[at0 + j] = static_cast<std::int8_t>(q);
        }
      } else {
        static_cast<float*>(a.c)[at0 + j] = scaled;
      }
    }
  }
}

using MicroU8Fn = void (*)(const GemmS8Args&, const std::uint8_t* __restrict,
                           const std::int8_t* __restrict, std::int32_t* __restrict);

template <int MR>
MicroU8Fn SelectByNr(std::int64_t nr) {
  switch (nr) {
    case 8:
      return &MicroU8<MR, 8>;
    case 16:
      return &MicroU8<MR, 16>;
    case 32:
      return &MicroU8<MR, 32>;
    case 64:
      return &MicroU8<MR, 64>;
    default:
      return nullptr;
  }
}

inline MicroU8Fn SelectMicro(std::int64_t mr, std::int64_t nr) {
  switch (mr) {
    case 1:
      return SelectByNr<1>(nr);
    case 2:
      return SelectByNr<2>(nr);
    case 4:
      return SelectByNr<4>(nr);
    case 6:
      return SelectByNr<6>(nr);
    case 8:
      return SelectByNr<8>(nr);
    default:
      return nullptr;  // uncommon pairs fall back to MicroEdgeU8
  }
}

}  // namespace NEOCPU_GEMM_S8_VARIANT_NS

// Macro-tile driver: one (mc x nc) block of C in a single K pass — B micro-panel
// reused innermost, A row panels streamed, fused epilogue on every store — exported
// per ISA variant and invoked by the dispatcher's ParallelFor over the macro-tile grid.
void NEOCPU_GEMM_S8_TILE_FN(const GemmS8Args& a, std::int64_t tile) {
  namespace v = NEOCPU_GEMM_S8_VARIANT_NS;
  const std::int64_t jb = tile % a.nb_count;
  const std::int64_t ib = tile / a.nb_count;
  const std::int64_t i0 = ib * a.mc;
  const std::int64_t i1 = i0 + a.mc < a.m ? i0 + a.mc : a.m;
  const std::int64_t j0 = jb * a.nc;
  const std::int64_t j1 = j0 + a.nc < a.n ? j0 + a.nc : a.n;

  const v::MicroU8Fn fast = v::SelectMicro(a.mr, a.nr);
  const v::MicroU8Fn micro = fast != nullptr ? fast : &v::MicroEdgeU8;

  std::int32_t acc[kMaxGemmMr * kMaxGemmNr];
  for (std::int64_t j = j0; j < j1; j += a.nr) {
    const std::int64_t bpanel = j / a.nr;
    const std::int8_t* bp = a.bp + bpanel * a.kq * a.nr * 4;
    const std::int64_t cols = a.nr < a.n - j ? a.nr : a.n - j;
    for (std::int64_t i = i0; i < i1; i += a.mr) {
      const std::int64_t apanel = i / a.mr;
      const std::uint8_t* ap = a.ap + apanel * a.kq * a.mr * 4;
      const std::int64_t rows = a.mr < a.m - i ? a.mr : a.m - i;
      micro(a, ap, bp, acc);
      v::StoreTileS8(a, acc, i, j, rows, cols);
    }
  }
}

}  // namespace detail
}  // namespace neocpu
