// Memory-bound elementwise and shape operations.
//
// Paper taxonomy (§3.2): ReLU / Softmax / ElemwiseAdd / Concat are layout-oblivious (or
// tolerant in concat's channel-axis case), so they accept any layout and the optimized
// NCHW[x]c layout flows through them unchanged. Flatten is layout-dependent — the graph
// pass inserts a transform back to NCHW before it.
#ifndef NEOCPU_SRC_KERNELS_ELEMENTWISE_H_
#define NEOCPU_SRC_KERNELS_ELEMENTWISE_H_

#include <cstdint>
#include <vector>

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Every kernel here has two forms: a Tensor-returning one that allocates its output,
// and an execute-into one writing a caller-provided tensor (the memory-planned
// executor's zero-allocation path; `out` may be a non-owning arena view). Into-forms
// check the output's dims/layout fatally.

// out = max(in, 0); any layout.
Tensor Relu(const Tensor& input, ThreadEngine* engine = nullptr);
void Relu(const Tensor& input, Tensor* out, ThreadEngine* engine = nullptr);

// out = a + b (+ReLU); shapes and layouts must match exactly.
Tensor AddElementwise(const Tensor& a, const Tensor& b, bool relu,
                      ThreadEngine* engine = nullptr);
void AddElementwise(const Tensor& a, const Tensor& b, bool relu, Tensor* out,
                    ThreadEngine* engine = nullptr);

// Concatenation along the channel axis. All inputs NCHW, or all NCHW[x]c with one common
// block size x (the layout constraint the global search's cost matrices encode).
Tensor ConcatChannels(const std::vector<Tensor>& inputs, ThreadEngine* engine = nullptr);
void ConcatChannels(const std::vector<Tensor>& inputs, Tensor* out,
                    ThreadEngine* engine = nullptr);

// Integer-domain channel concat over s8/u8 NCHW[x]c inputs: each input is rescaled
// inline during the copy from its own quantization params (in_scales[i], in_zeros[i])
// to the common output params (out_scale, out_zero) —
//   q_out = clamp(round((in_scale/out_scale) * (q_in - in_zero)) + out_zero).
// Inputs whose params already equal the output's degrade to a memcpy. All inputs and
// the output share one dtype.
Tensor ConcatChannelsInt(const std::vector<Tensor>& inputs,
                         const std::vector<float>& in_scales,
                         const std::vector<std::int32_t>& in_zeros, float out_scale,
                         std::int32_t out_zero, ThreadEngine* engine = nullptr);
void ConcatChannelsInt(const std::vector<Tensor>& inputs,
                       const std::vector<float>& in_scales,
                       const std::vector<std::int32_t>& in_zeros, float out_scale,
                       std::int32_t out_zero, Tensor* out,
                       ThreadEngine* engine = nullptr);

// Row-wise softmax on a {N, C} (or flat {C}) tensor.
Tensor Softmax(const Tensor& input, ThreadEngine* engine = nullptr);
void Softmax(const Tensor& input, Tensor* out, ThreadEngine* engine = nullptr);

// NCHW {N,C,H,W} -> {N, C*H*W}. Layout-dependent: input must be NCHW (4-D).
Tensor FlattenNCHW(const Tensor& input);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_ELEMENTWISE_H_
