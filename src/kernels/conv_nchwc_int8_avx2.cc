// AVX2 instantiation of the s8 NCHWc convolution row driver. Compiled with
// -mavx2 -mfma (CMake sets the per-file flags and skips this TU on toolchains without
// them); selected at runtime only when the host CPU reports AVX2.
#define NEOCPU_S8_VARIANT_NS s8_avx2
#define NEOCPU_S8_ROW_FN ConvS8RowAvx2
#include "src/kernels/conv_nchwc_int8_impl.h"
