#include "src/kernels/conv_winograd.h"

#include <algorithm>
#include <vector>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

// G (4x3): weight transform matrix of F(2x2, 3x3).
constexpr float kG[4][3] = {
    {1.0f, 0.0f, 0.0f}, {0.5f, 0.5f, 0.5f}, {0.5f, -0.5f, 0.5f}, {0.0f, 0.0f, 1.0f}};

// B^T (4x4): input tile transform.
constexpr float kBt[4][4] = {{1.0f, 0.0f, -1.0f, 0.0f},
                             {0.0f, 1.0f, 1.0f, 0.0f},
                             {0.0f, -1.0f, 1.0f, 0.0f},
                             {0.0f, 1.0f, 0.0f, -1.0f}};

// A^T (2x4): output tile transform.
constexpr float kAt[2][4] = {{1.0f, 1.0f, 1.0f, 0.0f}, {0.0f, 1.0f, -1.0f, -1.0f}};

}  // namespace

bool WinogradApplicable(const Conv2dParams& p) {
  return p.kernel_h == 3 && p.kernel_w == 3 && p.stride_h == 1 && p.stride_w == 1;
}

bool WinogradLegal(const Conv2dParams& p, const ConvEpilogue& epilogue) {
  return WinogradApplicable(p) && !epilogue.residual_add;
}

Tensor WinogradTransformWeights(const Tensor& w) {
  NEOCPU_CHECK_EQ(w.ndim(), 4);
  const std::int64_t oc = w.dim(0), ic = w.dim(1);
  NEOCPU_CHECK_EQ(w.dim(2), 3);
  NEOCPU_CHECK_EQ(w.dim(3), 3);
  Tensor u = Tensor::Empty({4, 4, oc, ic}, Layout::Flat());
  const float* src = w.data();
  float* dst = u.data();
  for (std::int64_t o = 0; o < oc; ++o) {
    for (std::int64_t i = 0; i < ic; ++i) {
      const float* g = src + (o * ic + i) * 9;
      // tmp = G g (4x3)
      float tmp[4][3];
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 3; ++c) {
          tmp[r][c] = kG[r][0] * g[0 * 3 + c] + kG[r][1] * g[1 * 3 + c] +
                      kG[r][2] * g[2 * 3 + c];
        }
      }
      // U = tmp G^T (4x4)
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          const float v =
              tmp[r][0] * kG[c][0] + tmp[r][1] * kG[c][1] + tmp[r][2] * kG[c][2];
          dst[((r * 4 + c) * oc + o) * ic + i] = v;
        }
      }
    }
  }
  return u;
}

std::size_t WinogradWorkspaceBytes(const Conv2dParams& p, int num_workers) {
  const std::size_t per_worker = 16 * static_cast<std::size_t>(p.in_c + p.out_c);
  return per_worker * static_cast<std::size_t>(num_workers < 1 ? 1 : num_workers) *
         sizeof(float);
}

void ConvWinograd(const Conv2dParams& p, const Tensor& input, const Tensor& u,
                  const Tensor* bias, const ConvEpilogue& epilogue, Tensor* output,
                  ThreadEngine* engine, float* workspace, std::size_t workspace_floats) {
  NEOCPU_CHECK(WinogradApplicable(p)) << p.ToString();
  NEOCPU_CHECK(!epilogue.residual_add) << "winograd path does not fuse residuals";
  NEOCPU_CHECK_EQ(u.ndim(), 4);
  NEOCPU_CHECK_EQ(u.dim(2), p.out_c);
  NEOCPU_CHECK_EQ(u.dim(3), p.in_c);
  const std::int64_t oh = p.OutH(), ow = p.OutW();
  CheckKernelOutput(output, {p.batch, p.out_c, oh, ow}, Layout::NCHW(), "winograd");

  const std::int64_t tiles_h = (oh + 1) / 2;
  const std::int64_t tiles_w = (ow + 1) / 2;
  const float* in_base = input.data();
  const float* u_base = u.data();
  const float* bias_base = epilogue.bias && bias != nullptr ? bias->data() : nullptr;
  float* out_base = output->data();
  const std::int64_t in_plane = p.in_h * p.in_w;
  const std::int64_t out_plane = oh * ow;

  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);

  // Parallelize over (batch, tile row) as one fork-join region with an explicit task
  // index, so each worker's V[16][IC] / M[16][OC] scratch (transform-major to match U's
  // plane layout) can be a disjoint slice of the planner-provided workspace.
  const std::int64_t total_rows = p.batch * tiles_h;
  const int workers = eng.NumWorkers() < 1 ? 1 : eng.NumWorkers();
  std::int64_t chunks = std::min<std::int64_t>(workers, total_rows < 1 ? 1 : total_rows);
  const std::size_t v_count = 16 * static_cast<std::size_t>(p.in_c);
  const std::size_t m_count = 16 * static_cast<std::size_t>(p.out_c);
  if (workspace != nullptr && workspace_floats > 0) {
    // A planner-provided workspace bounds how many disjoint per-worker slices exist;
    // never fan out wider than the slices it can back.
    const std::int64_t backed =
        static_cast<std::int64_t>(workspace_floats / (v_count + m_count));
    NEOCPU_CHECK_GE(backed, 1) << "winograd workspace smaller than one worker slice";
    chunks = std::min(chunks, backed);
  }
  eng.ParallelRun(static_cast<int>(chunks), [&](int task, int num_tasks) {
    const std::int64_t begin = total_rows * task / num_tasks;
    const std::int64_t end = total_rows * (task + 1) / num_tasks;
    if (begin >= end) {
      return;
    }
    std::vector<float> scratch;
    float* vm;
    if (workspace != nullptr) {
      vm = workspace + static_cast<std::size_t>(task) * (v_count + m_count);
    } else {
      scratch.resize(v_count + m_count);
      vm = scratch.data();
    }
    float* v = vm;
    float* m = vm + v_count;
    for (std::int64_t row = begin; row < end; ++row) {
      const std::int64_t n = row / tiles_h;
      const std::int64_t th = row % tiles_h;
      for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
        // Input tile origin in image coordinates (top-left of the 4x4 gather).
        const std::int64_t ih0 = th * 2 - p.pad_h;
        const std::int64_t iw0 = tw * 2 - p.pad_w;
        // V[xi][ic] for all input channels.
        for (std::int64_t ic = 0; ic < p.in_c; ++ic) {
          const float* in_ch = in_base + (n * p.in_c + ic) * in_plane;
          float d[4][4];
          for (int r = 0; r < 4; ++r) {
            const std::int64_t ih = ih0 + r;
            for (int c = 0; c < 4; ++c) {
              const std::int64_t iw = iw0 + c;
              d[r][c] = (ih >= 0 && ih < p.in_h && iw >= 0 && iw < p.in_w)
                            ? in_ch[ih * p.in_w + iw]
                            : 0.0f;
            }
          }
          float tmp[4][4];
          for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
              tmp[r][c] = kBt[r][0] * d[0][c] + kBt[r][1] * d[1][c] + kBt[r][2] * d[2][c] +
                          kBt[r][3] * d[3][c];
            }
          }
          for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
              // V = B^T d B; right-multiplying by B = dotting rows of tmp with rows of Bt.
              v[static_cast<std::size_t>((r * 4 + c) * p.in_c + ic)] =
                  tmp[r][0] * kBt[c][0] + tmp[r][1] * kBt[c][1] + tmp[r][2] * kBt[c][2] +
                  tmp[r][3] * kBt[c][3];
            }
          }
        }
        // M[xi][oc] = sum_ic U[xi][oc][ic] * V[xi][ic]: 16 independent (OC x IC) GEMVs.
        for (int xi = 0; xi < 16; ++xi) {
          const float* u_plane = u_base + static_cast<std::int64_t>(xi) * p.out_c * p.in_c;
          const float* v_vec = v + static_cast<std::size_t>(xi) * p.in_c;
          float* m_vec = m + static_cast<std::size_t>(xi) * p.out_c;
          for (std::int64_t o = 0; o < p.out_c; ++o) {
            const float* __restrict u_row = u_plane + o * p.in_c;
            float partial[8] = {};
            std::int64_t i = 0;
            for (; i + 8 <= p.in_c; i += 8) {
#pragma omp simd
              for (int j = 0; j < 8; ++j) {  // SIMD dimension
                partial[j] += u_row[i + j] * v_vec[i + j];
              }
            }
            float sum = 0.0f;
            for (; i < p.in_c; ++i) {
              sum += u_row[i] * v_vec[i];
            }
            for (int j = 0; j < 8; ++j) {
              sum += partial[j];
            }
            m_vec[o] = sum;
          }
        }
        // Y = A^T M A per output channel, guarded stores at the odd edges.
        const std::int64_t oh0 = th * 2;
        const std::int64_t ow0 = tw * 2;
        for (std::int64_t o = 0; o < p.out_c; ++o) {
          float mm[4][4];
          for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
              mm[r][c] = m[static_cast<std::size_t>((r * 4 + c) * p.out_c + o)];
            }
          }
          float tmp[2][4];
          for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 4; ++c) {
              tmp[r][c] = kAt[r][0] * mm[0][c] + kAt[r][1] * mm[1][c] +
                          kAt[r][2] * mm[2][c] + kAt[r][3] * mm[3][c];
            }
          }
          const float b = bias_base != nullptr ? bias_base[o] : 0.0f;
          float* out_ch = out_base + (n * p.out_c + o) * out_plane;
          for (int r = 0; r < 2; ++r) {
            const std::int64_t y = oh0 + r;
            if (y >= oh) {
              continue;
            }
            for (int c = 0; c < 2; ++c) {
              const std::int64_t x = ow0 + c;
              if (x >= ow) {
                continue;
              }
              float val = tmp[r][0] * kAt[c][0] + tmp[r][1] * kAt[c][1] +
                          tmp[r][2] * kAt[c][2] + tmp[r][3] * kAt[c][3] + b;
              if (epilogue.relu) {
                val = val > 0.0f ? val : 0.0f;
              }
              out_ch[y * ow + x] = val;
            }
          }
        }
      }
    }
  });
}

Tensor ConvWinograd(const Conv2dParams& p, const Tensor& input, const Tensor& u,
                    const Tensor* bias, const ConvEpilogue& epilogue, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  ConvWinograd(p, input, u, bias, epilogue, &out, engine, nullptr, 0);
  return out;
}

}  // namespace neocpu
