// Quantization kernels and scale helpers for the int8 inference path.
//
// Convention (IntelCaffe-style, PAPERS.md "Highly Efficient 8-bit Low Precision
// Inference"): activations are per-tensor symmetric s8 (zero point 0, clamp [-127,127]);
// u8 with an explicit zero point is supported by the standalone Q/DQ kernels (and the
// property fuzz) but the conv path is pure s8. Weights are per-output-channel symmetric
// s8; bias constants fold to s32 in the conv's accumulation domain; the per-channel
// (de)requantization multiplier fuses into the conv epilogue (conv_nchwc_int8).
//
// Every runtime kernel has an allocating form and an execute-into form (arena views on
// the memory-planned path).
#ifndef NEOCPU_SRC_KERNELS_QUANTIZE_H_
#define NEOCPU_SRC_KERNELS_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Quantized s8/u8 values cover [-127, 127] / [0, 255]: s8 keeps the symmetric +/-127
// range so scale * 127 == max|x| exactly round-trips the range endpoints.
inline constexpr std::int32_t kS8QuantMax = 127;

// Symmetric s8 scale covering an observed activation range: max(|lo|, |hi|) / 127,
// floored away from zero so a degenerate all-zero range stays invertible.
float SymmetricScale(float lo, float hi);

// Affine u8 parameters covering [lo, hi]: scale = (hi - lo) / 255 (floored like
// SymmetricScale), zero_point = round(-lo / scale) clamped to [0, 255]. The range is
// first widened to include 0 so the zero point is exactly representable (a quantized
// zero that round-trips is what lets ReLU and zero padding stay exact in u8).
void AffineScaleZeroPoint(float lo, float hi, float* scale, std::int32_t* zero_point);

// f32 -> `dtype` (kS8 or kU8): q = clamp(round(x / scale) + zero_point). Rounding is
// lrintf (round-to-nearest-even, the hardware cvtps2dq mode). zero_point must be 0 for
// kS8 (symmetric convention).
Tensor Quantize(const Tensor& input, float scale, std::int32_t zero_point, DType dtype,
                ThreadEngine* engine = nullptr);
void Quantize(const Tensor& input, float scale, std::int32_t zero_point, DType dtype,
              Tensor* out, ThreadEngine* engine = nullptr);

// s8/u8 -> f32: x = scale * (q - zero_point).
Tensor Dequantize(const Tensor& input, float scale, std::int32_t zero_point,
                  ThreadEngine* engine = nullptr);
void Dequantize(const Tensor& input, float scale, std::int32_t zero_point, Tensor* out,
                ThreadEngine* engine = nullptr);

// Per-output-channel symmetric weight quantization: OIHW f32 -> OIHW s8 plus one scale
// per output channel (scales[o] = max|w[o,...]| / 127). Also accepts a dense layer's
// {Out, In} weight (per-row scales).
void QuantizeConvWeightsPerOC(const Tensor& w_oihw, Tensor* w_s8,
                              std::vector<float>* scales);

// Bias fold into the conv's s32 accumulation domain:
//   b_s32[oc] = round(b_f32[oc] / (in_scale * w_scales[oc])).
Tensor QuantizeBiasS32(const Tensor& bias_f32, float in_scale,
                       const std::vector<float>& w_scales);

// VNNI weight packing for u8-activation convs: reorders each blocked weight tile's
// inner [ic_bn][oc_bn] layout (OIHW[ic_bn]i[oc_bn]o, dims {OCB, ICB, KH, KW, ic_bn,
// oc_bn}) to [ic_bn/4][oc_bn][4] so the 4 input-channel weights one vpdpbusd lane
// consumes are byte-adjacent. Dims are unchanged (same element count per tile); only
// the intra-tile order moves. Requires ic_bn % 4 == 0.
Tensor PackWeightsVnni(const Tensor& w_blocked_s8);

// Zero-point bias correction for u8 activations, applied IN PLACE to the s32 bias:
//   bias[oc] -= in_zero * sum over (ic, kh, kw) of w_s8[oc, ...].
// With q_u8 = x/scale + zp, the raw u8 dot product overshoots the true integer
// accumulation by zp * sum(w); folding the constant here keeps the kernel branch-free.
// Takes the blocked weights in standard tile order — call before PackWeightsVnni.
void FoldZeroPointIntoBias(const Tensor& w_blocked_s8, std::int32_t in_zero,
                           Tensor* bias_s32);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_QUANTIZE_H_
