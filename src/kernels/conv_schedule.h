// The convolution schedule tuple of paper §3.3.1.
//
//   (ic_bn, oc_bn, reg_n, unroll_ker)
//
// ic_bn / oc_bn are the input/output channel split factors (the x and y in NCHW[x]c and
// OIHW[x]i[y]o), reg_n is the number of output-width elements accumulated in SIMD
// registers simultaneously (register blocking, Figure 1), and unroll_ker chooses whether
// the kernel-entry loop is unrolled.
#ifndef NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_
#define NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_

#include <cstdint>
#include <string>

namespace neocpu {

struct ConvSchedule {
  std::int64_t ic_bn = 16;
  std::int64_t oc_bn = 16;
  std::int64_t reg_n = 8;
  bool unroll_ker = true;

  bool operator==(const ConvSchedule&) const = default;

  std::string ToString() const;
};

// Upper bounds accepted by the kernels (stack accumulator sizing).
inline constexpr std::int64_t kMaxRegN = 32;
inline constexpr std::int64_t kMaxChannelBlock = 64;

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_
