// The convolution schedule tuple of paper §3.3.1, extended with the algorithm choice.
//
//   (algo; ic_bn, oc_bn, reg_n, unroll_ker)
//
// ic_bn / oc_bn are the input/output channel split factors (the x and y in NCHW[x]c and
// OIHW[x]i[y]o), reg_n is the number of output-width elements accumulated in SIMD
// registers simultaneously (register blocking, Figure 1), and unroll_ker chooses whether
// the kernel-entry loop is unrolled.
//
// `algo` makes the convolution *algorithm* part of the searched schedule: the paper's
// named future work ("extending to other convolution computation algorithms such as
// Winograd and FFT") plus follow-up benchmarking (Galvez et al.) show the winner among
// direct / im2col / Winograd flips with the layer shape, so the choice is scored by the
// cost model and settled by the global search like any other schedule knob. The blocking
// fields are only meaningful for kDirectNCHWc; the NCHW-layout algorithms store zeros
// there so pair-keyed selection never confuses them with blocked schedules.
#ifndef NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_
#define NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_

#include <cstdint>
#include <string>

#include "src/tensor/dtype.h"

namespace neocpu {

// How a convolution is computed. Enumerator values are part of the serialized module
// and tuning-cache formats — append only.
enum class ConvAlgo : std::uint8_t {
  kDirectNCHWc = 0,  // Algorithm 1 template in NCHW[x]c (the paper's §3.1 kernel)
  kIm2col = 1,       // im2col + GEMM in NCHW (framework-default baseline)
  kWinograd = 2,     // F(2x2, 3x3) minimal filtering in NCHW; 3x3 s1 only
  kReference = 3,    // naive direct NCHW loop nest (correctness baseline)
};

const char* ConvAlgoName(ConvAlgo algo);

struct ConvSchedule {
  std::int64_t ic_bn = 16;
  std::int64_t oc_bn = 16;
  std::int64_t reg_n = 8;
  bool unroll_ker = true;
  ConvAlgo algo = ConvAlgo::kDirectNCHWc;
  // Execution dtype: kF32 runs the paper's fp32 pipeline, kS8/kU8 the quantized direct
  // NCHWc kernel (integer dtypes are only valid with kDirectNCHWc). kS8 carries
  // symmetric s8 activations; kU8 carries asymmetric u8 activations with a zero point
  // (the IntelCaffe u8·s8 form the VNNI driver accelerates — post-ReLU ranges use the
  // full u8 grid). The dtype is part of the searched schedule — the global search
  // weighs fp32-vs-s8-vs-u8 per conv against quantize/dequantize boundary costs
  // exactly like layout-transform costs.
  DType dtype = DType::kF32;

  bool operator==(const ConvSchedule&) const = default;

  bool IsDirect() const { return algo == ConvAlgo::kDirectNCHWc; }
  bool IsQuantized() const { return dtype == DType::kS8 || dtype == DType::kU8; }

  // Channel blocks of the layouts this schedule consumes/produces, as seen by the
  // global search's transform edges: kDirectNCHWc reads NCHW[ic_bn]c and writes
  // NCHW[oc_bn]c; every other algorithm reads and writes plain NCHW, encoded as block 0.
  std::int64_t InBlock() const { return IsDirect() ? ic_bn : 0; }
  std::int64_t OutBlock() const { return IsDirect() ? oc_bn : 0; }

  // Interface signatures for the global search's pairwise costs: block + dtype. Two
  // adjacent convs compose for free only when both the physical block AND the element
  // dtype agree; an fp32/s8 boundary costs a quantize or dequantize pass just like a
  // relayout costs a transform, and an s8/u8 boundary costs a (cheap, but nonzero)
  // offset-rewrite pass, so it carries its own signature bit.
  std::int64_t InSig() const { return InBlock() | DtypeSigBit(); }
  std::int64_t OutSig() const { return OutBlock() | DtypeSigBit(); }

  std::string ToString() const;

  static constexpr std::int64_t kS8SigBit = std::int64_t{1} << 32;
  static constexpr std::int64_t kU8SigBit = std::int64_t{1} << 33;

 private:
  std::int64_t DtypeSigBit() const {
    if (dtype == DType::kS8) {
      return kS8SigBit;
    }
    return dtype == DType::kU8 ? kU8SigBit : 0;
  }
};

// Canonical schedule entry for a non-blocked algorithm (blocking fields zeroed).
ConvSchedule AlgoSchedule(ConvAlgo algo);

// Upper bounds accepted by the kernels (stack accumulator sizing).
inline constexpr std::int64_t kMaxRegN = 32;
inline constexpr std::int64_t kMaxChannelBlock = 64;

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_SCHEDULE_H_
