// AVX-512 (no VNNI) instantiation of the packed u8·s8 GEMM tile driver. Compiled with
// -mavx512{f,bw,vl,dq} (see CMakeLists.txt); entered only after the dispatcher's cpuid
// check.
#define NEOCPU_GEMM_S8_VARIANT_NS gemm_s8_avx512
#define NEOCPU_GEMM_S8_TILE_FN GemmS8TileAvx512
#include "src/kernels/gemm_packed_int8_impl.h"
