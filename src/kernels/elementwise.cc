#include "src/kernels/elementwise.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

}  // namespace

void Relu(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  CheckKernelOutput(out, input.dims(), input.layout(), "relu");
  const float* src = input.data();
  float* dst = out->data();
  ParallelFor(Engine(engine), input.NumElements(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
    }
  });
}

Tensor Relu(const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout());
  Relu(input, &out, engine);
  return out;
}

void AddElementwise(const Tensor& a, const Tensor& b, bool relu, Tensor* out,
                    ThreadEngine* engine) {
  NEOCPU_CHECK(a.dims() == b.dims()) << a.DebugString() << " vs " << b.DebugString();
  NEOCPU_CHECK(a.layout() == b.layout())
      << "elementwise add requires identical layouts: " << a.layout().ToString() << " vs "
      << b.layout().ToString();
  CheckKernelOutput(out, a.dims(), a.layout(), "elem_add");
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out->data();
  ParallelFor(Engine(engine), a.NumElements(), [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      float v = pa[i] + pb[i];
      if (relu) {
        v = v > 0.0f ? v : 0.0f;
      }
      dst[i] = v;
    }
  });
}

Tensor AddElementwise(const Tensor& a, const Tensor& b, bool relu, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(a.dims(), a.layout());
  AddElementwise(a, b, relu, &out, engine);
  return out;
}

void ConcatChannels(const std::vector<Tensor>& inputs, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK(!inputs.empty());
  NEOCPU_CHECK(out != nullptr);
  const Tensor& first = inputs.front();
  const LayoutKind kind = first.layout().kind;
  NEOCPU_CHECK(kind == LayoutKind::kNCHW || kind == LayoutKind::kNCHWc);

  if (kind == LayoutKind::kNCHW) {
    const std::int64_t n = first.dim(0), h = first.dim(2), w = first.dim(3);
    std::int64_t total_c = 0;
    for (const Tensor& t : inputs) {
      NEOCPU_CHECK_EQ(t.ndim(), 4);
      NEOCPU_CHECK_EQ(t.dim(0), n);
      NEOCPU_CHECK_EQ(t.dim(2), h);
      NEOCPU_CHECK_EQ(t.dim(3), w);
      total_c += t.dim(1);
    }
    CheckKernelOutput(out, {n, total_c, h, w}, Layout::NCHW(), "concat");
    const std::int64_t plane = h * w;
    std::int64_t c_off = 0;
    for (const Tensor& t : inputs) {
      const std::int64_t c = t.dim(1);
      ParallelFor(Engine(engine), n, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t ni = begin; ni < end; ++ni) {
          std::memcpy(out->data() + (ni * total_c + c_off) * plane,
                      t.data() + ni * c * plane,
                      static_cast<std::size_t>(c * plane) * sizeof(float));
        }
      });
      c_off += c;
    }
    return;
  }

  // NCHWc: all inputs must share the block size; blocks are concatenated along C/x.
  const std::int64_t x = first.dim(4);
  const std::int64_t n = first.dim(0), h = first.dim(2), w = first.dim(3);
  std::int64_t total_cb = 0;
  for (const Tensor& t : inputs) {
    NEOCPU_CHECK_EQ(t.ndim(), 5);
    NEOCPU_CHECK_EQ(t.dim(4), x) << "concat requires one common channel block";
    NEOCPU_CHECK_EQ(t.dim(0), n);
    NEOCPU_CHECK_EQ(t.dim(2), h);
    NEOCPU_CHECK_EQ(t.dim(3), w);
    total_cb += t.dim(1);
  }
  CheckKernelOutput(out, {n, total_cb, h, w, x}, Layout::NCHWc(x), "concat");
  const std::int64_t plane = h * w * x;
  std::int64_t cb_off = 0;
  for (const Tensor& t : inputs) {
    const std::int64_t cb = t.dim(1);
    ParallelFor(Engine(engine), n, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t ni = begin; ni < end; ++ni) {
        std::memcpy(out->data() + (ni * total_cb + cb_off) * plane,
                    t.data() + ni * cb * plane,
                    static_cast<std::size_t>(cb * plane) * sizeof(float));
      }
    });
    cb_off += cb;
  }
}

Tensor ConcatChannels(const std::vector<Tensor>& inputs, ThreadEngine* engine) {
  NEOCPU_CHECK(!inputs.empty());
  const Tensor& first = inputs.front();
  Tensor out;
  if (first.layout().kind == LayoutKind::kNCHW) {
    std::int64_t total_c = 0;
    for (const Tensor& t : inputs) {
      total_c += t.dim(1);
    }
    out = Tensor::Empty({first.dim(0), total_c, first.dim(2), first.dim(3)}, Layout::NCHW());
  } else {
    std::int64_t total_cb = 0;
    for (const Tensor& t : inputs) {
      total_cb += t.dim(1);
    }
    out = Tensor::Empty({first.dim(0), total_cb, first.dim(2), first.dim(3), first.dim(4)},
                        Layout::NCHWc(first.dim(4)));
  }
  ConcatChannels(inputs, &out, engine);
  return out;
}

namespace {

template <typename Q>
void ConcatRescaleCopy(const Tensor& t, float rel_scale, std::int32_t in_zero,
                       std::int32_t out_zero, std::int64_t n, std::int64_t total_cb,
                       std::int64_t cb_off, std::int64_t plane, Tensor* out,
                       ThreadEngine* engine) {
  const std::int64_t cb = t.dim(1);
  const Q* src_base = reinterpret_cast<const Q*>(t.data());
  Q* dst_base = reinterpret_cast<Q*>(out->data());
  constexpr std::int32_t kLo = std::numeric_limits<Q>::min();
  constexpr std::int32_t kHi = std::numeric_limits<Q>::max();
  // Same params on both sides: the "rescale" is the identity, copy bytes.
  const bool identity = rel_scale == 1.0f && in_zero == out_zero;
  ParallelFor(Engine(engine), n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ni = begin; ni < end; ++ni) {
      Q* dst = dst_base + (ni * total_cb + cb_off) * plane;
      const Q* src = src_base + ni * cb * plane;
      if (identity) {
        std::memcpy(dst, src, static_cast<std::size_t>(cb * plane) * sizeof(Q));
        continue;
      }
      for (std::int64_t i = 0; i < cb * plane; ++i) {
        const float v = rel_scale * static_cast<float>(
                                        static_cast<std::int32_t>(src[i]) - in_zero);
        const std::int32_t q =
            static_cast<std::int32_t>(std::lrintf(v)) + out_zero;
        dst[i] = static_cast<Q>(std::clamp(q, kLo, kHi));
      }
    }
  });
}

}  // namespace

void ConcatChannelsInt(const std::vector<Tensor>& inputs,
                       const std::vector<float>& in_scales,
                       const std::vector<std::int32_t>& in_zeros, float out_scale,
                       std::int32_t out_zero, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK(!inputs.empty());
  NEOCPU_CHECK(out != nullptr);
  NEOCPU_CHECK_EQ(inputs.size(), in_scales.size());
  NEOCPU_CHECK_EQ(inputs.size(), in_zeros.size());
  NEOCPU_CHECK_GT(out_scale, 0.0f);
  const Tensor& first = inputs.front();
  const bool blocked = first.layout().kind == LayoutKind::kNCHWc;
  NEOCPU_CHECK(blocked || first.ndim() == 4) << first.DebugString();
  const DType dt = first.dtype();
  NEOCPU_CHECK(dt == DType::kS8 || dt == DType::kU8) << first.DebugString();
  // NCHW is the x == 1 case of the blocked walk: per sample, each input contributes
  // one contiguous [cb * plane] run at a channel offset.
  const std::int64_t x = blocked ? first.dim(4) : 1;
  const std::int64_t n = first.dim(0), h = first.dim(2), w = first.dim(3);
  std::int64_t total_cb = 0;
  for (const Tensor& t : inputs) {
    NEOCPU_CHECK_EQ(t.ndim(), blocked ? 5 : 4);
    NEOCPU_CHECK(t.dtype() == dt) << t.DebugString();
    if (blocked) {
      NEOCPU_CHECK_EQ(t.dim(4), x) << "concat requires one common channel block";
    }
    NEOCPU_CHECK_EQ(t.dim(0), n);
    NEOCPU_CHECK_EQ(t.dim(2), h);
    NEOCPU_CHECK_EQ(t.dim(3), w);
    total_cb += t.dim(1);
  }
  if (blocked) {
    CheckKernelOutput(out, {n, total_cb, h, w, x}, Layout::NCHWc(x), "concat_int");
  } else {
    CheckKernelOutput(out, {n, total_cb, h, w}, Layout::NCHW(), "concat_int");
  }
  NEOCPU_CHECK(out->dtype() == dt) << out->DebugString();
  const std::int64_t plane = h * w * x;
  std::int64_t cb_off = 0;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    const float rel = in_scales[k] / out_scale;
    if (dt == DType::kS8) {
      ConcatRescaleCopy<std::int8_t>(inputs[k], rel, in_zeros[k], out_zero, n,
                                     total_cb, cb_off, plane, out, engine);
    } else {
      ConcatRescaleCopy<std::uint8_t>(inputs[k], rel, in_zeros[k], out_zero, n,
                                      total_cb, cb_off, plane, out, engine);
    }
    cb_off += inputs[k].dim(1);
  }
}

Tensor ConcatChannelsInt(const std::vector<Tensor>& inputs,
                         const std::vector<float>& in_scales,
                         const std::vector<std::int32_t>& in_zeros, float out_scale,
                         std::int32_t out_zero, ThreadEngine* engine) {
  NEOCPU_CHECK(!inputs.empty());
  const Tensor& first = inputs.front();
  std::int64_t total_cb = 0;
  for (const Tensor& t : inputs) {
    total_cb += t.dim(1);
  }
  Tensor out =
      first.layout().kind == LayoutKind::kNCHWc
          ? Tensor::Empty({first.dim(0), total_cb, first.dim(2), first.dim(3),
                           first.dim(4)},
                          Layout::NCHWc(first.dim(4)), first.dtype())
          : Tensor::Empty({first.dim(0), total_cb, first.dim(2), first.dim(3)},
                          Layout::NCHW(), first.dtype());
  ConcatChannelsInt(inputs, in_scales, in_zeros, out_scale, out_zero, &out, engine);
  return out;
}

void Softmax(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  CheckKernelOutput(out, input.dims(), input.layout(), "softmax");
  const std::int64_t rows = input.ndim() >= 2 ? input.dim(0) : 1;
  const std::int64_t cols = input.NumElements() / rows;
  const float* src = input.data();
  float* dst = out->data();
  ParallelFor(Engine(engine), rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t r = begin; r < end; ++r) {
      const float* in_row = src + r * cols;
      float* out_row = dst + r * cols;
      float maxv = in_row[0];
      for (std::int64_t i = 1; i < cols; ++i) {
        maxv = std::max(maxv, in_row[i]);
      }
      float sum = 0.0f;
      for (std::int64_t i = 0; i < cols; ++i) {
        out_row[i] = std::exp(in_row[i] - maxv);
        sum += out_row[i];
      }
      const float inv = 1.0f / sum;
      for (std::int64_t i = 0; i < cols; ++i) {
        out_row[i] *= inv;
      }
    }
  });
}

Tensor Softmax(const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout());
  Softmax(input, &out, engine);
  return out;
}

Tensor FlattenNCHW(const Tensor& input) {
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  NEOCPU_CHECK(input.layout().kind == LayoutKind::kNCHW)
      << "Flatten is layout-dependent; the graph pass must insert a transform to NCHW";
  return input.Reshaped({input.dim(0), input.dim(1) * input.dim(2) * input.dim(3)},
                        Layout::Flat());
}

}  // namespace neocpu
