// AVX-512 VNNI instantiation of the int8 NCHWc row driver. Compiled with
// -mavx512{f,bw,vl,dq,vnni} (see CMakeLists per-file flags); the u8 interior
// micro-kernel lowers each 4-channel group to one vpdpbusd. Only the dispatcher
// calls into this TU, and only after cpuid confirms avx512vnni.
#define NEOCPU_S8_VARIANT_NS s8_avx512vnni
#define NEOCPU_S8_ROW_FN ConvS8RowAvx512Vnni
#include "src/kernels/conv_nchwc_int8_impl.h"
