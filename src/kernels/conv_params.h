// Convolution workload descriptor and fused-epilogue description.
//
// A Conv2dParams value identifies a "convolution workload" in the paper's sense (the
// tuning database is keyed by it); ConvEpilogue describes the operations the graph-level
// fusion pass folded into the convolution (bias add, residual add, ReLU).
#ifndef NEOCPU_SRC_KERNELS_CONV_PARAMS_H_
#define NEOCPU_SRC_KERNELS_CONV_PARAMS_H_

#include <cstdint>
#include <string>

namespace neocpu {

struct Conv2dParams {
  std::int64_t batch = 1;
  std::int64_t in_c = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t out_c = 0;
  std::int64_t kernel_h = 1;
  std::int64_t kernel_w = 1;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;

  bool operator==(const Conv2dParams&) const = default;

  std::int64_t OutH() const { return (in_h + 2 * pad_h - kernel_h) / stride_h + 1; }
  std::int64_t OutW() const { return (in_w + 2 * pad_w - kernel_w) / stride_w + 1; }

  // Multiply-accumulate count (FLOPs = 2 * Macs).
  double Macs() const {
    return static_cast<double>(batch) * static_cast<double>(out_c) *
           static_cast<double>(OutH()) * static_cast<double>(OutW()) *
           static_cast<double>(in_c) * static_cast<double>(kernel_h) *
           static_cast<double>(kernel_w);
  }

  std::string ToString() const;
  // Stable shape token inside a WorkloadKey (src/tuning/workload_key.h); leads with the
  // batch size because the batch is part of the tuning-workload identity.
  std::string CacheKey() const;
  // Inverse of CacheKey. Returns false (leaving *params untouched) unless `text` is
  // exactly what CacheKey() would produce.
  static bool ParseCacheKey(const std::string& text, Conv2dParams* params);
};

struct ConvEpilogue {
  bool bias = false;          // add per-output-channel bias
  bool residual_add = false;  // add a second input tensor elementwise (ResNet shortcut)
  bool relu = false;          // clamp at zero

  bool operator==(const ConvEpilogue&) const = default;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_PARAMS_H_
