// Fully-connected (dense) layer: out[n, o] = sum_i in[n, i] * w[o, i] + b[o].
#ifndef NEOCPU_SRC_KERNELS_DENSE_H_
#define NEOCPU_SRC_KERNELS_DENSE_H_

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input {N, In}; weight {Out, In}; bias flat {Out} or null. Returns {N, Out}.
Tensor Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
             ThreadEngine* engine = nullptr);
// Execute-into form: `out` is a preallocated {N, Out} tensor (arena view on the
// memory-planned path).
void Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
           Tensor* out, ThreadEngine* engine = nullptr);

// Quantized dense with the s8 GEMM epilogue pattern of conv_nchwc_int8: s8 input
// {N, In}, per-output-row symmetric s8 weights {Out, In}, pre-folded s32 bias {Out}
// (or null), s32 accumulation, then the fused epilogue — integer ReLU and a
// per-output-channel dequantize multiplier (in_scale * w_scale[o]) to an f32 {N, Out}
// output. This legacy path always dequantizes on the way out; the tuned u8 GEMM path
// (gemm_packed_int8.h, reached via a dense GemmSchedule) can instead requantize to u8
// and keep a Dense->Dense FFN chain inside the integer region.
Tensor DenseS8(const Tensor& input, const Tensor& weight, const Tensor* bias,
               const Tensor& multiplier, bool relu, ThreadEngine* engine = nullptr);
void DenseS8(const Tensor& input, const Tensor& weight, const Tensor* bias,
             const Tensor& multiplier, bool relu, Tensor* out,
             ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_DENSE_H_
