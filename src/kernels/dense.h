// Fully-connected (dense) layer: out[n, o] = sum_i in[n, i] * w[o, i] + b[o].
#ifndef NEOCPU_SRC_KERNELS_DENSE_H_
#define NEOCPU_SRC_KERNELS_DENSE_H_

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input {N, In}; weight {Out, In}; bias flat {Out} or null. Returns {N, Out}.
Tensor Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
             ThreadEngine* engine = nullptr);
// Execute-into form: `out` is a preallocated {N, Out} tensor (arena view on the
// memory-planned path).
void Dense(const Tensor& input, const Tensor& weight, const Tensor* bias, bool relu,
           Tensor* out, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_DENSE_H_
