// Implementation body of the s8 NCHWc direct convolution, compiled once per ISA
// variant: the including translation unit defines NEOCPU_S8_VARIANT_NS (a unique
// namespace, so multiple instantiations coexist without ODR collisions) and
// NEOCPU_S8_ROW_FN (the exported row-driver symbol), then includes this header.
//
// IMPORTANT: everything in the variant body is raw-pointer arithmetic on the POD
// argument block — no shared inline library functions — so a TU compiled with wider
// vector flags can never leak wide code into vague-linkage symbols another TU also
// emits. Threading stays in the baseline-compiled dispatcher (conv_nchwc_int8.cc),
// which calls the row driver through a function pointer.
#ifndef NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_
#define NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_

#include <cmath>
#include <cstdint>

#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
#include <immintrin.h>
#endif

#include "src/kernels/conv_schedule.h"

namespace neocpu {
namespace detail {

// Resolved dims/strides plus the fused-epilogue description; plain data only.
struct S8ConvArgs {
  std::int64_t n, icb_count, ih, iw, icb;  // input physical dims
  std::int64_t ocb_count, oh, ow, ocb;     // output physical dims
  std::int64_t kh, kw, sh, sw, ph, pw;
  std::int64_t in_sn, in_sc, in_sh;  // input strides (innermost stride is icb)
  std::int64_t w_so, w_sc;           // weight strides per oc-block / ic-block
  std::int64_t out_sn, out_sc, out_sh;
  std::int64_t reg_n = 8;
  bool unroll_ker = true;
  std::int64_t ow_lo = 0, ow_hi = 0;  // interior out-width range (no horizontal checks)

  const std::int8_t* in = nullptr;
  const std::int8_t* w = nullptr;
  const std::int32_t* bias = nullptr;  // null when no bias epilogue
  const float* mult = nullptr;         // per-output-channel epilogue multiplier, {OC}
  bool relu = false;
  bool requant = false;  // true: out is s8/u8; false: out is f32
  // u8-activation mode: `in` bytes are u8 (the zero-point correction is pre-folded
  // into `bias`, so the kernel multiplies raw bytes), and the weights are VNNI-packed:
  // the inner [ici][ocb] tile is reordered to [ici/4][ocb][4] so one vpdpbusd lane
  // reads 4 consecutive ici weights. All ISA tiers read this layout (scalar tiers just
  // index it differently), which keeps the cross-ISA accumulators bitwise identical.
  // Requires icb % 4 == 0.
  bool src_u8 = false;
  // Input zero point (u8 mode). The bias fold subtracts in_zero * sum(w) over ALL
  // kernel taps, so the u8 micro-kernels must read a virtual `in_zero` byte at padded
  // positions (an f32 zero quantizes to the zero point) — skipping them like the s8
  // path does would over-correct border pixels.
  std::int32_t in_zero = 0;
  bool out_u8 = false;          // requantized output dtype is u8 (else s8)
  std::int32_t out_zero = 0;    // output zero point (u8 requant only)
  void* out = nullptr;
};

using S8RowFn = void (*)(const S8ConvArgs&, std::int64_t row);

}  // namespace detail
}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_

namespace neocpu {
namespace detail {
namespace NEOCPU_S8_VARIANT_NS {

// Interior micro-kernel: REGN consecutive out-width positions of one (n, oc_block, oh)
// row, no horizontal bounds checks.
//
// The multiply-accumulate runs in 16-bit, pairwise: an s8*s8 product is exact in s16
// (|p| <= 127*127) and the sum of TWO such products still fits (2*16129 < 32767), so
// each input-channel pair contributes `sext32(p0 + p1)` to the s32 accumulators. The
// vectorizer lowers the j loop to one 16-lane (or 32-lane under AVX-512BW) vpmullw pair
// + vpaddw + one widening add — twice the MAC density of a widened 32-bit multiply, and
// the pattern the pmaddwd/VNNI family accelerates, without requiring either.
template <int OCB, int REGN, bool UNROLL>
void MicroInterior(const S8ConvArgs& a, const std::int8_t* __restrict in_n,
                   const std::int8_t* __restrict w_o, std::int64_t oh, std::int64_t ow0,
                   std::int32_t* __restrict out_acc) {
  std::int32_t acc[REGN][OCB];
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      acc[r][j] = 0;
    }
  }
  const std::int64_t iw0 = ow0 * a.sw - a.pw;
  const std::int64_t icb = a.icb;
  const std::int64_t w_kstride = icb * OCB;

  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::int8_t* in_c = in_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      if (ih < 0 || ih >= a.ih) {
        continue;
      }
      const std::int8_t* in_h = in_c + ih * a.in_sh + iw0 * icb;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      auto kw_body = [&](std::int64_t kw) {
        const std::int8_t* __restrict w_k = w_h + kw * w_kstride;
        const std::int8_t* __restrict in_w = in_h + kw * icb;
        std::int64_t ici = 0;
        for (; ici + 2 <= icb; ici += 2) {
          const std::int8_t* __restrict wv0 = w_k + ici * OCB;
          const std::int8_t* __restrict wv1 = wv0 + OCB;
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const std::int64_t in_at = static_cast<std::int64_t>(r) * a.sw * icb + ici;
            const std::int16_t iv0 = in_w[in_at];
            const std::int16_t iv1 = in_w[in_at + 1];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              const std::int16_t p0 = static_cast<std::int16_t>(iv0 * wv0[j]);
              const std::int16_t p1 = static_cast<std::int16_t>(iv1 * wv1[j]);
              acc[r][j] += static_cast<std::int16_t>(p0 + p1);
            }
          }
        }
        if (ici < icb) {  // odd input-channel block tail
          const std::int8_t* __restrict wv = w_k + ici * OCB;
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const std::int16_t iv =
                in_w[static_cast<std::int64_t>(r) * a.sw * icb + ici];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              acc[r][j] += static_cast<std::int16_t>(iv * wv[j]);
            }
          }
        }
      };
      if constexpr (UNROLL) {
#pragma GCC unroll 8
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      } else {
#pragma GCC unroll 1
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      }
    }
  }
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      out_acc[r * OCB + j] = acc[r][j];
    }
  }
}

// Generic guarded micro-kernel: runtime block sizes, per-element horizontal checks
// (image edges, out-width tails, uncommon oc_bn values).
inline void MicroEdge(const S8ConvArgs& a, const std::int8_t* in_n, const std::int8_t* w_o,
                      std::int64_t oh, std::int64_t ow0, std::int64_t count,
                      std::int32_t* acc) {
  const std::int64_t ocb = a.ocb;
  const std::int64_t icb = a.icb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      acc[r * ocb + j] = 0;
    }
  }
  const std::int64_t w_kstride = icb * ocb;
  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::int8_t* in_c = in_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      if (ih < 0 || ih >= a.ih) {
        continue;
      }
      const std::int8_t* in_h = in_c + ih * a.in_sh;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      for (std::int64_t kw = 0; kw < a.kw; ++kw) {
        const std::int8_t* w_k = w_h + kw * w_kstride;
        for (std::int64_t r = 0; r < count; ++r) {
          const std::int64_t iw = (ow0 + r) * a.sw - a.pw + kw;
          if (iw < 0 || iw >= a.iw) {
            continue;
          }
          const std::int8_t* in_w = in_h + iw * icb;
          for (std::int64_t ici = 0; ici < icb; ++ici) {
            const std::int32_t iv = in_w[ici];
            const std::int8_t* wv = w_k + ici * ocb;
            for (std::int64_t j = 0; j < ocb; ++j) {
              acc[r * ocb + j] += iv * static_cast<std::int32_t>(wv[j]);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------------
// u8-activation micro-kernels (IntelCaffe u8·s8 form). A u8*s8 product reaches
// 255*127 = 32385, so the s16 pairwise trick above would overflow on the pair sum
// (2*32385 > 32767) — the IntelCaffe s16-overflow hazard. The portable tiers
// therefore accumulate every 4-product group directly in s32 (exact, no saturation);
// the AVX-512 VNNI tier lowers the identical 4-wide group to one vpdpbusd, whose
// internal s16 products and s32 horizontal add are also exact — so every tier
// produces bitwise-identical accumulators.
//
// Weights are VNNI-packed per (ic_block, kh, kw) tile: [ici/4][ocb][4].

// Interior u8 micro-kernel: REGN positions, no horizontal checks. icb % 4 == 0.
template <int OCB, int REGN, bool UNROLL>
void MicroInteriorU8(const S8ConvArgs& a, const std::int8_t* __restrict in_n,
                     const std::int8_t* __restrict w_o, std::int64_t oh,
                     std::int64_t ow0, std::int32_t* __restrict out_acc) {
  const std::uint8_t* __restrict u_n = reinterpret_cast<const std::uint8_t*>(in_n);
  const std::int64_t iw0 = ow0 * a.sw - a.pw;
  const std::int64_t icb = a.icb;
  const std::int64_t w_kstride = icb * OCB;

#if defined(__AVX512VNNI__) && defined(__AVX512VL__)
  if constexpr (OCB % 16 == 0) {
    constexpr int OCV = OCB / 16;
    __m512i acc[REGN][OCV];
    for (int r = 0; r < REGN; ++r) {
      for (int v = 0; v < OCV; ++v) {
        acc[r][v] = _mm512_setzero_si512();
      }
    }
    const std::uint32_t zp_quad =
        static_cast<std::uint32_t>(a.in_zero) * 0x01010101u;
    for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
      const std::uint8_t* in_c = u_n + ico * a.in_sc;
      const std::int8_t* w_c = w_o + ico * a.w_sc;
      for (std::int64_t kh = 0; kh < a.kh; ++kh) {
        const std::int64_t ih = oh * a.sh - a.ph + kh;
        const bool pad_row = ih < 0 || ih >= a.ih;
        if (pad_row && a.in_zero == 0) {
          continue;  // a zero-point of 0 makes virtual padding contribute nothing
        }
        const std::uint8_t* in_h =
            pad_row ? nullptr : in_c + ih * a.in_sh + iw0 * icb;
        const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          const std::int8_t* __restrict w_k = w_h + kw * w_kstride;
          const std::uint8_t* __restrict in_w = pad_row ? nullptr : in_h + kw * icb;
          for (std::int64_t ici = 0; ici < icb; ici += 4) {
            // One [ocb][4] weight tile = OCV contiguous 64-byte vectors.
            const std::int8_t* __restrict wt = w_k + ici * OCB;
            __m512i b[OCV];
            for (int v = 0; v < OCV; ++v) {
              b[v] = _mm512_loadu_si512(wt + v * 64);
            }
#pragma GCC unroll 32
            for (int r = 0; r < REGN; ++r) {
              std::uint32_t quad = zp_quad;
              if (!pad_row) {
                __builtin_memcpy(
                    &quad, in_w + static_cast<std::int64_t>(r) * a.sw * icb + ici, 4);
              }
              const __m512i av = _mm512_set1_epi32(static_cast<int>(quad));
              for (int v = 0; v < OCV; ++v) {
                acc[r][v] = _mm512_dpbusd_epi32(acc[r][v], av, b[v]);
              }
            }
          }
        }
      }
    }
    for (int r = 0; r < REGN; ++r) {
      for (int v = 0; v < OCV; ++v) {
        _mm512_storeu_si512(out_acc + r * OCB + v * 16, acc[r][v]);
      }
    }
    return;
  }
#endif  // __AVX512VNNI__ && __AVX512VL__

  std::int32_t acc[REGN][OCB];
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      acc[r][j] = 0;
    }
  }
  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::uint8_t* in_c = u_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      const bool pad_row = ih < 0 || ih >= a.ih;
      if (pad_row && a.in_zero == 0) {
        continue;
      }
      const std::uint8_t* in_h = pad_row ? nullptr : in_c + ih * a.in_sh + iw0 * icb;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      auto kw_body = [&](std::int64_t kw) {
        const std::int8_t* __restrict w_k = w_h + kw * w_kstride;
        const std::uint8_t* __restrict in_w = pad_row ? nullptr : in_h + kw * icb;
        for (std::int64_t ici = 0; ici < icb; ici += 4) {
          const std::int8_t* __restrict wt = w_k + ici * OCB;
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const std::int64_t in_at = static_cast<std::int64_t>(r) * a.sw * icb + ici;
            const std::int32_t iv0 = pad_row ? a.in_zero : in_w[in_at];
            const std::int32_t iv1 = pad_row ? a.in_zero : in_w[in_at + 1];
            const std::int32_t iv2 = pad_row ? a.in_zero : in_w[in_at + 2];
            const std::int32_t iv3 = pad_row ? a.in_zero : in_w[in_at + 3];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              acc[r][j] += iv0 * wt[j * 4] + iv1 * wt[j * 4 + 1] +
                           iv2 * wt[j * 4 + 2] + iv3 * wt[j * 4 + 3];
            }
          }
        }
      };
      if constexpr (UNROLL) {
#pragma GCC unroll 8
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      } else {
#pragma GCC unroll 1
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      }
    }
  }
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      out_acc[r * OCB + j] = acc[r][j];
    }
  }
}

// Generic guarded u8 micro-kernel: runtime block sizes, per-element horizontal checks.
// Handles any ici against the packed [ici/4][ocb][4] layout, so it needs no icb
// divisibility beyond the dispatcher-checked icb % 4 == 0.
inline void MicroEdgeU8(const S8ConvArgs& a, const std::int8_t* in_n,
                        const std::int8_t* w_o, std::int64_t oh, std::int64_t ow0,
                        std::int64_t count, std::int32_t* acc) {
  const std::uint8_t* u_n = reinterpret_cast<const std::uint8_t*>(in_n);
  const std::int64_t ocb = a.ocb;
  const std::int64_t icb = a.icb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      acc[r * ocb + j] = 0;
    }
  }
  const std::int64_t w_kstride = icb * ocb;
  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::uint8_t* in_c = u_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      const bool pad_row = ih < 0 || ih >= a.ih;
      if (pad_row && a.in_zero == 0) {
        continue;
      }
      const std::uint8_t* in_h = pad_row ? nullptr : in_c + ih * a.in_sh;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      for (std::int64_t kw = 0; kw < a.kw; ++kw) {
        const std::int8_t* w_k = w_h + kw * w_kstride;
        for (std::int64_t r = 0; r < count; ++r) {
          const std::int64_t iw = (ow0 + r) * a.sw - a.pw + kw;
          const bool pad = pad_row || iw < 0 || iw >= a.iw;
          if (pad && a.in_zero == 0) {
            continue;
          }
          const std::uint8_t* in_w = pad ? nullptr : in_h + iw * icb;
          for (std::int64_t ici = 0; ici < icb; ++ici) {
            const std::int32_t iv = pad ? a.in_zero : in_w[ici];
            const std::int8_t* wv = w_k + (ici / 4) * ocb * 4 + (ici % 4);
            for (std::int64_t j = 0; j < ocb; ++j) {
              acc[r * ocb + j] += iv * static_cast<std::int32_t>(wv[j * 4]);
            }
          }
        }
      }
    }
  }
}

// Epilogue for `count` positions starting at ow0: bias add, integer ReLU, per-channel
// scale, store to s8 (requant) or f32 (dequant).
inline void StoreSegment(const S8ConvArgs& a, const std::int32_t* acc,
                         const std::int32_t* bias_o, const float* mult_o, void* out_row,
                         std::int64_t ow0, std::int64_t count) {
  const std::int64_t ocb = a.ocb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      std::int32_t v = acc[r * ocb + j];
      if (bias_o != nullptr) {
        v += bias_o[j];
      }
      if (a.relu && v < 0) {
        v = 0;
      }
      const float scaled = static_cast<float>(v) * mult_o[j];
      const std::int64_t at = (ow0 + r) * ocb + j;
      if (a.requant) {
        std::int32_t q = static_cast<std::int32_t>(std::lrintf(scaled));
        if (a.out_u8) {
          q += a.out_zero;
          q = q > 255 ? 255 : (q < 0 ? 0 : q);
          static_cast<std::uint8_t*>(out_row)[at] = static_cast<std::uint8_t>(q);
        } else {
          q = q > 127 ? 127 : (q < -127 ? -127 : q);
          static_cast<std::int8_t*>(out_row)[at] = static_cast<std::int8_t>(q);
        }
      } else {
        static_cast<float*>(out_row)[at] = scaled;
      }
    }
  }
}

using MicroFn = void (*)(const S8ConvArgs&, const std::int8_t* __restrict,
                         const std::int8_t* __restrict, std::int64_t, std::int64_t,
                         std::int32_t* __restrict);

template <bool U8, int OCB, bool UNROLL>
MicroFn SelectByRegN(std::int64_t reg_n) {
  switch (reg_n) {
    case 2:
      return U8 ? &MicroInteriorU8<OCB, 2, UNROLL> : &MicroInterior<OCB, 2, UNROLL>;
    case 4:
      return U8 ? &MicroInteriorU8<OCB, 4, UNROLL> : &MicroInterior<OCB, 4, UNROLL>;
    case 8:
      return U8 ? &MicroInteriorU8<OCB, 8, UNROLL> : &MicroInterior<OCB, 8, UNROLL>;
    case 16:
      return U8 ? &MicroInteriorU8<OCB, 16, UNROLL> : &MicroInterior<OCB, 16, UNROLL>;
    case 32:
      return U8 ? &MicroInteriorU8<OCB, 32, UNROLL> : &MicroInterior<OCB, 32, UNROLL>;
    default:
      return nullptr;
  }
}

template <bool U8, int OCB>
MicroFn SelectByUnroll(std::int64_t reg_n, bool unroll) {
  return unroll ? SelectByRegN<U8, OCB, true>(reg_n)
                : SelectByRegN<U8, OCB, false>(reg_n);
}

template <bool U8>
MicroFn SelectMicroFor(std::int64_t ocb, std::int64_t reg_n, bool unroll) {
  switch (ocb) {
    case 4:
      return SelectByUnroll<U8, 4>(reg_n, unroll);
    case 8:
      return SelectByUnroll<U8, 8>(reg_n, unroll);
    case 16:
      return SelectByUnroll<U8, 16>(reg_n, unroll);
    case 32:
      return SelectByUnroll<U8, 32>(reg_n, unroll);
    case 64:
      return SelectByUnroll<U8, 64>(reg_n, unroll);
    default:
      return nullptr;  // uncommon blocks fall back to MicroEdge
  }
}

inline MicroFn SelectMicro(std::int64_t ocb, std::int64_t reg_n, bool unroll) {
  return SelectMicroFor<false>(ocb, reg_n, unroll);
}

}  // namespace NEOCPU_S8_VARIANT_NS

// Row driver: one (n, oc_block, oh) output row — left edge, interior register blocks,
// tail — exported per ISA variant and invoked by the dispatcher's ParallelFor.
void NEOCPU_S8_ROW_FN(const S8ConvArgs& a, std::int64_t row) {
  namespace v = NEOCPU_S8_VARIANT_NS;
  const std::int64_t oh = row % a.oh;
  const std::int64_t rest = row / a.oh;
  const std::int64_t oco = rest % a.ocb_count;
  const std::int64_t n = rest / a.ocb_count;

  const std::int8_t* in_n = a.in + n * a.in_sn;
  const std::int8_t* w_o = a.w + oco * a.w_so;
  const std::int32_t* bias_o = a.bias != nullptr ? a.bias + oco * a.ocb : nullptr;
  const float* mult_o = a.mult + oco * a.ocb;
  const std::int64_t out_off = n * a.out_sn + oco * a.out_sc + oh * a.out_sh;
  void* out_row = a.requant
                      ? static_cast<void*>(static_cast<std::int8_t*>(a.out) + out_off)
                      : static_cast<void*>(static_cast<float*>(a.out) + out_off);

  std::int32_t acc[kMaxRegN * kMaxChannelBlock];
  const v::MicroFn fast = a.src_u8 ? v::SelectMicroFor<true>(a.ocb, a.reg_n, a.unroll_ker)
                                   : v::SelectMicroFor<false>(a.ocb, a.reg_n, a.unroll_ker);
  const auto edge = a.src_u8 ? &v::MicroEdgeU8 : &v::MicroEdge;

  std::int64_t ow = 0;
  // Left edge (horizontal padding).
  if (ow < a.ow_lo) {
    const std::int64_t limit = a.ow_lo < a.ow ? a.ow_lo : a.ow;
    const std::int64_t count = limit - ow;
    for (std::int64_t c = 0; c < count; c += a.reg_n) {
      const std::int64_t take = a.reg_n < count - c ? a.reg_n : count - c;
      edge(a, in_n, w_o, oh, ow + c, take, acc);
      v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow + c, take);
    }
    ow += count;
  }
  // Interior: full reg_n register blocks through the template instantiation.
  if (fast != nullptr) {
    while (ow + a.reg_n <= a.ow_hi) {
      fast(a, in_n, w_o, oh, ow, acc);
      v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow, a.reg_n);
      ow += a.reg_n;
    }
  }
  // Interior tail + right edge.
  while (ow < a.ow) {
    const std::int64_t count = a.reg_n < a.ow - ow ? a.reg_n : a.ow - ow;
    edge(a, in_n, w_o, oh, ow, count, acc);
    v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow, count);
    ow += count;
  }
}

}  // namespace detail
}  // namespace neocpu
