// Implementation body of the s8 NCHWc direct convolution, compiled once per ISA
// variant: the including translation unit defines NEOCPU_S8_VARIANT_NS (a unique
// namespace, so multiple instantiations coexist without ODR collisions) and
// NEOCPU_S8_ROW_FN (the exported row-driver symbol), then includes this header.
//
// IMPORTANT: everything in the variant body is raw-pointer arithmetic on the POD
// argument block — no shared inline library functions — so a TU compiled with wider
// vector flags can never leak wide code into vague-linkage symbols another TU also
// emits. Threading stays in the baseline-compiled dispatcher (conv_nchwc_int8.cc),
// which calls the row driver through a function pointer.
#ifndef NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_
#define NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_

#include <cmath>
#include <cstdint>

#include "src/kernels/conv_schedule.h"

namespace neocpu {
namespace detail {

// Resolved dims/strides plus the fused-epilogue description; plain data only.
struct S8ConvArgs {
  std::int64_t n, icb_count, ih, iw, icb;  // input physical dims
  std::int64_t ocb_count, oh, ow, ocb;     // output physical dims
  std::int64_t kh, kw, sh, sw, ph, pw;
  std::int64_t in_sn, in_sc, in_sh;  // input strides (innermost stride is icb)
  std::int64_t w_so, w_sc;           // weight strides per oc-block / ic-block
  std::int64_t out_sn, out_sc, out_sh;
  std::int64_t reg_n = 8;
  bool unroll_ker = true;
  std::int64_t ow_lo = 0, ow_hi = 0;  // interior out-width range (no horizontal checks)

  const std::int8_t* in = nullptr;
  const std::int8_t* w = nullptr;
  const std::int32_t* bias = nullptr;  // null when no bias epilogue
  const float* mult = nullptr;         // per-output-channel epilogue multiplier, {OC}
  bool relu = false;
  bool requant = false;  // true: out is s8; false: out is f32
  void* out = nullptr;
};

using S8RowFn = void (*)(const S8ConvArgs&, std::int64_t row);

}  // namespace detail
}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_NCHWC_INT8_IMPL_COMMON_

namespace neocpu {
namespace detail {
namespace NEOCPU_S8_VARIANT_NS {

// Interior micro-kernel: REGN consecutive out-width positions of one (n, oc_block, oh)
// row, no horizontal bounds checks.
//
// The multiply-accumulate runs in 16-bit, pairwise: an s8*s8 product is exact in s16
// (|p| <= 127*127) and the sum of TWO such products still fits (2*16129 < 32767), so
// each input-channel pair contributes `sext32(p0 + p1)` to the s32 accumulators. The
// vectorizer lowers the j loop to one 16-lane (or 32-lane under AVX-512BW) vpmullw pair
// + vpaddw + one widening add — twice the MAC density of a widened 32-bit multiply, and
// the pattern the pmaddwd/VNNI family accelerates, without requiring either.
template <int OCB, int REGN, bool UNROLL>
void MicroInterior(const S8ConvArgs& a, const std::int8_t* __restrict in_n,
                   const std::int8_t* __restrict w_o, std::int64_t oh, std::int64_t ow0,
                   std::int32_t* __restrict out_acc) {
  std::int32_t acc[REGN][OCB];
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      acc[r][j] = 0;
    }
  }
  const std::int64_t iw0 = ow0 * a.sw - a.pw;
  const std::int64_t icb = a.icb;
  const std::int64_t w_kstride = icb * OCB;

  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::int8_t* in_c = in_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      if (ih < 0 || ih >= a.ih) {
        continue;
      }
      const std::int8_t* in_h = in_c + ih * a.in_sh + iw0 * icb;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      auto kw_body = [&](std::int64_t kw) {
        const std::int8_t* __restrict w_k = w_h + kw * w_kstride;
        const std::int8_t* __restrict in_w = in_h + kw * icb;
        std::int64_t ici = 0;
        for (; ici + 2 <= icb; ici += 2) {
          const std::int8_t* __restrict wv0 = w_k + ici * OCB;
          const std::int8_t* __restrict wv1 = wv0 + OCB;
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const std::int64_t in_at = static_cast<std::int64_t>(r) * a.sw * icb + ici;
            const std::int16_t iv0 = in_w[in_at];
            const std::int16_t iv1 = in_w[in_at + 1];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              const std::int16_t p0 = static_cast<std::int16_t>(iv0 * wv0[j]);
              const std::int16_t p1 = static_cast<std::int16_t>(iv1 * wv1[j]);
              acc[r][j] += static_cast<std::int16_t>(p0 + p1);
            }
          }
        }
        if (ici < icb) {  // odd input-channel block tail
          const std::int8_t* __restrict wv = w_k + ici * OCB;
#pragma GCC unroll 32
          for (int r = 0; r < REGN; ++r) {
            const std::int16_t iv =
                in_w[static_cast<std::int64_t>(r) * a.sw * icb + ici];
#pragma omp simd
            for (int j = 0; j < OCB; ++j) {
              acc[r][j] += static_cast<std::int16_t>(iv * wv[j]);
            }
          }
        }
      };
      if constexpr (UNROLL) {
#pragma GCC unroll 8
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      } else {
#pragma GCC unroll 1
        for (std::int64_t kw = 0; kw < a.kw; ++kw) {
          kw_body(kw);
        }
      }
    }
  }
  for (int r = 0; r < REGN; ++r) {
#pragma omp simd
    for (int j = 0; j < OCB; ++j) {
      out_acc[r * OCB + j] = acc[r][j];
    }
  }
}

// Generic guarded micro-kernel: runtime block sizes, per-element horizontal checks
// (image edges, out-width tails, uncommon oc_bn values).
inline void MicroEdge(const S8ConvArgs& a, const std::int8_t* in_n, const std::int8_t* w_o,
                      std::int64_t oh, std::int64_t ow0, std::int64_t count,
                      std::int32_t* acc) {
  const std::int64_t ocb = a.ocb;
  const std::int64_t icb = a.icb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      acc[r * ocb + j] = 0;
    }
  }
  const std::int64_t w_kstride = icb * ocb;
  for (std::int64_t ico = 0; ico < a.icb_count; ++ico) {
    const std::int8_t* in_c = in_n + ico * a.in_sc;
    const std::int8_t* w_c = w_o + ico * a.w_sc;
    for (std::int64_t kh = 0; kh < a.kh; ++kh) {
      const std::int64_t ih = oh * a.sh - a.ph + kh;
      if (ih < 0 || ih >= a.ih) {
        continue;
      }
      const std::int8_t* in_h = in_c + ih * a.in_sh;
      const std::int8_t* w_h = w_c + kh * a.kw * w_kstride;
      for (std::int64_t kw = 0; kw < a.kw; ++kw) {
        const std::int8_t* w_k = w_h + kw * w_kstride;
        for (std::int64_t r = 0; r < count; ++r) {
          const std::int64_t iw = (ow0 + r) * a.sw - a.pw + kw;
          if (iw < 0 || iw >= a.iw) {
            continue;
          }
          const std::int8_t* in_w = in_h + iw * icb;
          for (std::int64_t ici = 0; ici < icb; ++ici) {
            const std::int32_t iv = in_w[ici];
            const std::int8_t* wv = w_k + ici * ocb;
            for (std::int64_t j = 0; j < ocb; ++j) {
              acc[r * ocb + j] += iv * static_cast<std::int32_t>(wv[j]);
            }
          }
        }
      }
    }
  }
}

// Epilogue for `count` positions starting at ow0: bias add, integer ReLU, per-channel
// scale, store to s8 (requant) or f32 (dequant).
inline void StoreSegment(const S8ConvArgs& a, const std::int32_t* acc,
                         const std::int32_t* bias_o, const float* mult_o, void* out_row,
                         std::int64_t ow0, std::int64_t count) {
  const std::int64_t ocb = a.ocb;
  for (std::int64_t r = 0; r < count; ++r) {
    for (std::int64_t j = 0; j < ocb; ++j) {
      std::int32_t v = acc[r * ocb + j];
      if (bias_o != nullptr) {
        v += bias_o[j];
      }
      if (a.relu && v < 0) {
        v = 0;
      }
      const float scaled = static_cast<float>(v) * mult_o[j];
      const std::int64_t at = (ow0 + r) * ocb + j;
      if (a.requant) {
        std::int32_t q = static_cast<std::int32_t>(std::lrintf(scaled));
        q = q > 127 ? 127 : (q < -127 ? -127 : q);
        static_cast<std::int8_t*>(out_row)[at] = static_cast<std::int8_t>(q);
      } else {
        static_cast<float*>(out_row)[at] = scaled;
      }
    }
  }
}

using MicroFn = void (*)(const S8ConvArgs&, const std::int8_t* __restrict,
                         const std::int8_t* __restrict, std::int64_t, std::int64_t,
                         std::int32_t* __restrict);

template <int OCB, bool UNROLL>
MicroFn SelectByRegN(std::int64_t reg_n) {
  switch (reg_n) {
    case 2:
      return &MicroInterior<OCB, 2, UNROLL>;
    case 4:
      return &MicroInterior<OCB, 4, UNROLL>;
    case 8:
      return &MicroInterior<OCB, 8, UNROLL>;
    case 16:
      return &MicroInterior<OCB, 16, UNROLL>;
    case 32:
      return &MicroInterior<OCB, 32, UNROLL>;
    default:
      return nullptr;
  }
}

template <int OCB>
MicroFn SelectByUnroll(std::int64_t reg_n, bool unroll) {
  return unroll ? SelectByRegN<OCB, true>(reg_n) : SelectByRegN<OCB, false>(reg_n);
}

inline MicroFn SelectMicro(std::int64_t ocb, std::int64_t reg_n, bool unroll) {
  switch (ocb) {
    case 4:
      return SelectByUnroll<4>(reg_n, unroll);
    case 8:
      return SelectByUnroll<8>(reg_n, unroll);
    case 16:
      return SelectByUnroll<16>(reg_n, unroll);
    case 32:
      return SelectByUnroll<32>(reg_n, unroll);
    case 64:
      return SelectByUnroll<64>(reg_n, unroll);
    default:
      return nullptr;  // uncommon blocks fall back to MicroEdge
  }
}

}  // namespace NEOCPU_S8_VARIANT_NS

// Row driver: one (n, oc_block, oh) output row — left edge, interior register blocks,
// tail — exported per ISA variant and invoked by the dispatcher's ParallelFor.
void NEOCPU_S8_ROW_FN(const S8ConvArgs& a, std::int64_t row) {
  namespace v = NEOCPU_S8_VARIANT_NS;
  const std::int64_t oh = row % a.oh;
  const std::int64_t rest = row / a.oh;
  const std::int64_t oco = rest % a.ocb_count;
  const std::int64_t n = rest / a.ocb_count;

  const std::int8_t* in_n = a.in + n * a.in_sn;
  const std::int8_t* w_o = a.w + oco * a.w_so;
  const std::int32_t* bias_o = a.bias != nullptr ? a.bias + oco * a.ocb : nullptr;
  const float* mult_o = a.mult + oco * a.ocb;
  const std::int64_t out_off = n * a.out_sn + oco * a.out_sc + oh * a.out_sh;
  void* out_row = a.requant
                      ? static_cast<void*>(static_cast<std::int8_t*>(a.out) + out_off)
                      : static_cast<void*>(static_cast<float*>(a.out) + out_off);

  std::int32_t acc[kMaxRegN * kMaxChannelBlock];
  const v::MicroFn fast = v::SelectMicro(a.ocb, a.reg_n, a.unroll_ker);

  std::int64_t ow = 0;
  // Left edge (horizontal padding).
  if (ow < a.ow_lo) {
    const std::int64_t limit = a.ow_lo < a.ow ? a.ow_lo : a.ow;
    const std::int64_t count = limit - ow;
    for (std::int64_t c = 0; c < count; c += a.reg_n) {
      const std::int64_t take = a.reg_n < count - c ? a.reg_n : count - c;
      v::MicroEdge(a, in_n, w_o, oh, ow + c, take, acc);
      v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow + c, take);
    }
    ow += count;
  }
  // Interior: full reg_n register blocks through the template instantiation.
  if (fast != nullptr) {
    while (ow + a.reg_n <= a.ow_hi) {
      fast(a, in_n, w_o, oh, ow, acc);
      v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow, a.reg_n);
      ow += a.reg_n;
    }
  }
  // Interior tail + right edge.
  while (ow < a.ow) {
    const std::int64_t count = a.reg_n < a.ow - ow ? a.reg_n : a.ow - ow;
    v::MicroEdge(a, in_n, w_o, oh, ow, count, acc);
    v::StoreSegment(a, acc, bias_o, mult_o, out_row, ow, count);
    ow += count;
  }
}

}  // namespace detail
}  // namespace neocpu
