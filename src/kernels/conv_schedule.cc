#include "src/kernels/conv_schedule.h"

#include "src/base/string_util.h"

namespace neocpu {

const char* ConvAlgoName(ConvAlgo algo) {
  switch (algo) {
    case ConvAlgo::kDirectNCHWc:
      return "direct";
    case ConvAlgo::kIm2col:
      return "im2col";
    case ConvAlgo::kWinograd:
      return "winograd";
    case ConvAlgo::kReference:
      return "reference";
  }
  return "?";
}

ConvSchedule AlgoSchedule(ConvAlgo algo) {
  ConvSchedule s;
  s.ic_bn = 0;
  s.oc_bn = 0;
  s.reg_n = 0;
  s.unroll_ker = false;
  s.algo = algo;
  return s;
}

std::string ConvSchedule::ToString() const {
  if (!IsDirect()) {
    return StrFormat("(%s)", ConvAlgoName(algo));
  }
  return StrFormat("(ic_bn=%lld oc_bn=%lld reg_n=%lld unroll=%s%s%s)",
                   static_cast<long long>(ic_bn), static_cast<long long>(oc_bn),
                   static_cast<long long>(reg_n), unroll_ker ? "T" : "F",
                   IsQuantized() ? " " : "", IsQuantized() ? DTypeName(dtype) : "");
}

}  // namespace neocpu
