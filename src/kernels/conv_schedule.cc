#include "src/kernels/conv_schedule.h"

#include "src/base/string_util.h"

namespace neocpu {

std::string ConvSchedule::ToString() const {
  return StrFormat("(ic_bn=%lld oc_bn=%lld reg_n=%lld unroll=%s)",
                   static_cast<long long>(ic_bn), static_cast<long long>(oc_bn),
                   static_cast<long long>(reg_n), unroll_ker ? "T" : "F");
}

}  // namespace neocpu
