// Winograd convolution F(2x2, 3x3) — the paper's named future-work extension ("the
// future work includes extending to other convolution computation algorithms such as
// Winograd and FFT"; §1 notes NeoCPU "is compatible to other optimization works on the
// computationally-intensive kernels, e.g. CONVs via Winograd").
//
// Applicable to 3x3 stride-1 convolutions. Arithmetic drops from 9 to 16/4 = 4 MACs per
// output (2.25x), traded against the input/output tile transforms. The implementation
// here is the standard minimal-filtering form:
//   U = G g G^T (weight transform, once per compile),
//   V = B^T d B (input tile transform),
//   Y = A^T [ sum_ic U .* V ] A (output transform),
// with zero-padded gathers at image borders and guarded stores at odd output edges.
#ifndef NEOCPU_SRC_KERNELS_CONV_WINOGRAD_H_
#define NEOCPU_SRC_KERNELS_CONV_WINOGRAD_H_

#include "src/kernels/conv_params.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// True when the workload is in Winograd's domain (3x3, stride 1).
bool WinogradApplicable(const Conv2dParams& params);

// Graph-dispatch legality: the workload is applicable AND the fused epilogue is one the
// kernel supports (bias/ReLU yes, residual add no — the tuner must not pick Winograd
// for a conv that fused a shortcut).
bool WinogradLegal(const Conv2dParams& params, const ConvEpilogue& epilogue);

// Weight transform: OIHW {OC, IC, 3, 3} -> {4, 4, OC, IC} (transform-major so the
// per-tile accumulation streams contiguous (oc, ic) planes). Computed at compile time.
Tensor WinogradTransformWeights(const Tensor& weight_oihw);

// Workspace-size query hook for the memory planner: bytes of V/M tile scratch one
// ConvWinograd call needs when run on an engine with `num_workers` workers (each worker
// owns a disjoint V[16, IC] + M[16, OC] slice).
std::size_t WinogradWorkspaceBytes(const Conv2dParams& params, int num_workers);

// input NCHW; transformed weights from WinogradTransformWeights; bias flat {OC} or
// null. Returns NCHW output.
Tensor ConvWinograd(const Conv2dParams& params, const Tensor& input,
                    const Tensor& transformed_weights, const Tensor* bias,
                    const ConvEpilogue& epilogue, ThreadEngine* engine = nullptr);

// Execute-into form: output preallocated NCHW; `workspace` (optional) holds per-worker
// V/M tile scratch — when null, each worker allocates its own. `workspace_floats` is the
// workspace's capacity in floats (0 = trust the caller to have sized it for this
// engine's worker count); when the capacity covers fewer workers than the engine offers,
// the kernel clamps its parallelism to the workers the workspace can back, so a plan
// sized for N workers stays safe under any engine.
void ConvWinograd(const Conv2dParams& params, const Tensor& input,
                  const Tensor& transformed_weights, const Tensor* bias,
                  const ConvEpilogue& epilogue, Tensor* output,
                  ThreadEngine* engine = nullptr, float* workspace = nullptr,
                  std::size_t workspace_floats = 0);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_WINOGRAD_H_
