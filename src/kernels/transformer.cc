#include "src/kernels/transformer.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/logging.h"

namespace neocpu {

namespace {

// Rows (M) and width (D) of a {M, D} or flat {D} tensor.
void RowsCols(const Tensor& t, std::int64_t* rows, std::int64_t* cols) {
  NEOCPU_CHECK(t.dims().size() == 2 || t.dims().size() == 1)
      << "expected a 2-D (or flat) tensor, got " << t.dims().size() << "-D";
  if (t.dims().size() == 2) {
    *rows = t.dim(0);
    *cols = t.dim(1);
  } else {
    *rows = 1;
    *cols = t.dim(0);
  }
}

}  // namespace

void LayerNormRows(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                   float epsilon, Tensor* out, ThreadEngine* engine) {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  RowsCols(input, &rows, &cols);
  NEOCPU_CHECK(gamma.NumElements() == cols && beta.NumElements() == cols)
      << "layer_norm gamma/beta must be {D} with D=" << cols;
  NEOCPU_CHECK(out->NumElements() == input.NumElements());
  const float* x = input.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* y = out->data();
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  ParallelFor(eng, rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t m = begin; m < end; ++m) {
      const float* row = x + m * cols;
      float* dst = y + m * cols;
      float mean = 0.0f;
      for (std::int64_t d = 0; d < cols; ++d) {
        mean += row[d];
      }
      mean /= static_cast<float>(cols);
      float var = 0.0f;
      for (std::int64_t d = 0; d < cols; ++d) {
        const float c = row[d] - mean;
        var += c * c;
      }
      var /= static_cast<float>(cols);
      const float inv = 1.0f / std::sqrt(var + epsilon);
      for (std::int64_t d = 0; d < cols; ++d) {
        dst[d] = g[d] * (row[d] - mean) * inv + b[d];
      }
    }
  });
}

Tensor LayerNormRows(const Tensor& input, const Tensor& gamma, const Tensor& beta,
                     float epsilon, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(input.dims(), input.layout());
  LayerNormRows(input, gamma, beta, epsilon, &out, engine);
  return out;
}

void Transpose2D(const Tensor& input, Tensor* out, ThreadEngine* engine) {
  NEOCPU_CHECK(input.dims().size() == 2) << "transpose expects a 2-D tensor";
  const std::int64_t m = input.dim(0);
  const std::int64_t n = input.dim(1);
  NEOCPU_CHECK(out->NumElements() == m * n);
  const float* x = input.data();
  float* y = out->data();
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  // Block 32x32 so both the read and write streams stay cache-resident.
  constexpr std::int64_t kB = 32;
  const std::int64_t row_blocks = (m + kB - 1) / kB;
  ParallelFor(eng, row_blocks, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t rb = begin; rb < end; ++rb) {
      const std::int64_t i0 = rb * kB;
      const std::int64_t i1 = std::min<std::int64_t>(i0 + kB, m);
      for (std::int64_t j0 = 0; j0 < n; j0 += kB) {
        const std::int64_t j1 = std::min<std::int64_t>(j0 + kB, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t j = j0; j < j1; ++j) {
            y[j * m + i] = x[i * n + j];
          }
        }
      }
    }
  });
}

Tensor Transpose2D(const Tensor& input, ThreadEngine* engine) {
  Tensor out = Tensor::Empty({input.dim(1), input.dim(0)}, Layout::Flat());
  Transpose2D(input, &out, engine);
  return out;
}

std::int64_t MhaWorkspaceFloats(std::int64_t rows, std::int64_t seq,
                                std::int64_t heads) {
  NEOCPU_CHECK(seq > 0 && heads > 0 && rows % seq == 0);
  const std::int64_t batch = rows / seq;
  return batch * heads * seq * seq;
}

void MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                        std::int64_t heads, std::int64_t seq, Tensor* out,
                        ThreadEngine* engine, float* workspace) {
  std::int64_t rows = 0;
  std::int64_t dim = 0;
  RowsCols(q, &rows, &dim);
  NEOCPU_CHECK(k.NumElements() == rows * dim && v.NumElements() == rows * dim)
      << "attention q/k/v shapes must match";
  NEOCPU_CHECK(heads > 0 && dim % heads == 0)
      << "attention dim " << dim << " not divisible by heads " << heads;
  NEOCPU_CHECK(seq > 0 && rows % seq == 0)
      << "attention rows " << rows << " not divisible by seq " << seq;
  NEOCPU_CHECK(out->NumElements() == rows * dim);
  const std::int64_t batch = rows / seq;
  const std::int64_t dh = dim / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const float* qp = q.data();
  const float* kp = k.data();
  const float* vp = v.data();
  float* op = out->data();
  std::vector<float> owned;
  if (workspace == nullptr) {
    owned.resize(static_cast<std::size_t>(MhaWorkspaceFloats(rows, seq, heads)));
    workspace = owned.data();
  }
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  // One unit per (batch, head) pair; each owns a private {seq, seq} score tile in the
  // workspace, so the loop is embarrassingly parallel and allocation-free when planned.
  ParallelFor(eng, batch * heads, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t u = begin; u < end; ++u) {
      const std::int64_t b = u / heads;
      const std::int64_t h = u % heads;
      // Head h of row r lives at [(b*seq + r) * dim + h*dh .. +dh).
      const float* qh = qp + b * seq * dim + h * dh;
      const float* kh = kp + b * seq * dim + h * dh;
      const float* vh = vp + b * seq * dim + h * dh;
      float* oh = op + b * seq * dim + h * dh;
      float* scores = workspace + u * seq * seq;
      for (std::int64_t i = 0; i < seq; ++i) {
        float* srow = scores + i * seq;
        // scores[i, j] = scale * <q_i, k_j>
        for (std::int64_t j = 0; j < seq; ++j) {
          float acc = 0.0f;
          const float* qi = qh + i * dim;
          const float* kj = kh + j * dim;
          for (std::int64_t d = 0; d < dh; ++d) {
            acc += qi[d] * kj[d];
          }
          srow[j] = acc * scale;
        }
        // Numerically-stable softmax in place.
        float mx = srow[0];
        for (std::int64_t j = 1; j < seq; ++j) {
          mx = std::max(mx, srow[j]);
        }
        float sum = 0.0f;
        for (std::int64_t j = 0; j < seq; ++j) {
          srow[j] = std::exp(srow[j] - mx);
          sum += srow[j];
        }
        const float inv = 1.0f / sum;
        // out_i = sum_j softmax(scores)[i, j] * v_j
        float* oi = oh + i * dim;
        for (std::int64_t d = 0; d < dh; ++d) {
          oi[d] = 0.0f;
        }
        for (std::int64_t j = 0; j < seq; ++j) {
          const float w = srow[j] * inv;
          const float* vj = vh + j * dim;
          for (std::int64_t d = 0; d < dh; ++d) {
            oi[d] += w * vj[d];
          }
        }
      }
    }
  });
}

Tensor MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          std::int64_t heads, std::int64_t seq, ThreadEngine* engine) {
  Tensor out = Tensor::Empty(q.dims(), q.layout());
  MultiHeadAttention(q, k, v, heads, seq, &out, engine, nullptr);
  return out;
}

}  // namespace neocpu
