// The GEMM schedule tuple for the tuned, packed matrix-multiply family — the dense
// analogue of ConvSchedule (§3.3.1 applied to the second workload class):
//
//   (mc, nc, kc; mr x nr; dtype)
//
// mc/nc/kc are the Goto-style cache tiles (rows of A per macro tile, columns of B per
// macro tile, K-depth per packed panel pass) and mr x nr is the register micro-kernel:
// mr rows of packed A broadcast against nr packed B columns held in SIMD accumulators.
// A is packed into [ceil(m/mr)][k][mr] panels at run time (arena workspace); B is packed
// into [ceil(n/nr)][k][nr] panels — at compile time for dense-layer weights, at run time
// for the im2col column buffer.
//
// dtype selects the execution pipeline like ConvSchedule::dtype does for convs: kF32
// runs the fp32 micro-kernel, kU8 the u8·s8→s32 integer micro-kernel (IntelCaffe form,
// VNNI vpdpbusd on the widest tier) with quad-packed operands [..][ceil(k/4)][..][4].
// The integer path keeps the whole K reduction in registers (kc is clamped to k), so
// the fused requantizing epilogue needs no s32 staging and every ISA tier accumulates
// the same s32 sums — bitwise-identical outputs across tiers.
#ifndef NEOCPU_SRC_KERNELS_GEMM_SCHEDULE_H_
#define NEOCPU_SRC_KERNELS_GEMM_SCHEDULE_H_

#include <cstdint>
#include <string>

#include "src/tensor/dtype.h"

namespace neocpu {

struct GemmSchedule {
  std::int64_t mc = 64;   // A rows per macro tile
  std::int64_t nc = 256;  // B columns per macro tile
  std::int64_t kc = 256;  // K depth per packed-panel pass (f32; integer path uses k)
  std::int64_t mr = 4;    // micro-kernel rows
  std::int64_t nr = 16;   // micro-kernel columns (SIMD lanes x accumulator count)
  // kF32 or kU8 (u8 activations · s8 weights, zero point folded into the s32 bias).
  DType dtype = DType::kF32;

  bool operator==(const GemmSchedule&) const = default;

  bool IsQuantized() const { return dtype == DType::kU8; }

  std::string ToString() const;
};

// Upper bounds accepted by the micro-kernels (stack accumulator sizing) and the
// template instantiation grids.
inline constexpr std::int64_t kMaxGemmMr = 8;
inline constexpr std::int64_t kMaxGemmNr = 64;

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_SCHEDULE_H_
