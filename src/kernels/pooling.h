// Spatial pooling in NCHW and NCHW[x]c layouts.
//
// Pooling is "layout-tolerant" in the paper's taxonomy (§3.2): it needs to know the
// layout but works in both, so the optimized NCHW[x]c layout flows through it without a
// transform. The NCHWc variant's inner loop runs over the channel block, vectorizing the
// same way the convolution epilogue does.
#ifndef NEOCPU_SRC_KERNELS_POOLING_H_
#define NEOCPU_SRC_KERNELS_POOLING_H_

#include <cstdint>

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

enum class PoolType { kMax, kAvg };

struct Pool2dParams {
  PoolType type = PoolType::kMax;
  std::int64_t kernel_h = 2;
  std::int64_t kernel_w = 2;
  std::int64_t stride_h = 2;
  std::int64_t stride_w = 2;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  // When true (the convention of the zoo models here), average pooling divides by the
  // full kernel area including padded positions; otherwise by the valid count.
  bool count_include_pad = false;
  // Ceil-mode output size (SSD's 3x3/s1 pooling and DenseNet transitions use floor).
  bool ceil_mode = false;

  std::int64_t OutDim(std::int64_t in, std::int64_t k, std::int64_t s, std::int64_t p) const;
  std::int64_t OutH(std::int64_t in_h) const { return OutDim(in_h, kernel_h, stride_h, pad_h); }
  std::int64_t OutW(std::int64_t in_w) const { return OutDim(in_w, kernel_w, stride_w, pad_w); }
};

// Each kernel has an allocating form and an execute-into form writing a caller-provided
// output (arena view on the memory-planned path); into-forms check dims fatally.

// input NCHW {N,C,H,W} -> output NCHW (allocated by callee).
Tensor PoolNCHW(const Pool2dParams& params, const Tensor& input, ThreadEngine* engine = nullptr);
void PoolNCHW(const Pool2dParams& params, const Tensor& input, Tensor* out,
              ThreadEngine* engine = nullptr);

// input NCHW[x]c {N,C/x,H,W,x} -> output NCHW[x]c.
Tensor PoolNCHWc(const Pool2dParams& params, const Tensor& input,
                 ThreadEngine* engine = nullptr);
void PoolNCHWc(const Pool2dParams& params, const Tensor& input, Tensor* out,
               ThreadEngine* engine = nullptr);

// Integer-domain pooling over s8 or u8 tensors, NCHW[x]c or plain NCHW (the x == 1
// case — layout fallbacks around concat groups can demote integer tensors to NCHW).
// The output keeps the input dtype
// and quantization params, so no Q/DQ pair is needed around the node). Max pooling is
// an integer compare — quantization is monotonic, so the result is bitwise the same
// element the f32 pool would have picked. Average pooling accumulates in s32 and
// rounds once; `zero_point` is the input's zero point (s8: 0), which padded cells
// contribute under count_include_pad because a padded f32 cell holds real 0.0.
Tensor PoolNCHWcInt(const Pool2dParams& params, const Tensor& input,
                    std::int32_t zero_point, ThreadEngine* engine = nullptr);
void PoolNCHWcInt(const Pool2dParams& params, const Tensor& input,
                  std::int32_t zero_point, Tensor* out, ThreadEngine* engine = nullptr);

// Global average pooling: NCHW -> {N, C, 1, 1}; NCHWc -> {N, C/x, 1, 1, x}.
Tensor GlobalAvgPoolNCHW(const Tensor& input, ThreadEngine* engine = nullptr);
void GlobalAvgPoolNCHW(const Tensor& input, Tensor* out, ThreadEngine* engine = nullptr);
Tensor GlobalAvgPoolNCHWc(const Tensor& input, ThreadEngine* engine = nullptr);
void GlobalAvgPoolNCHWc(const Tensor& input, Tensor* out, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_POOLING_H_
