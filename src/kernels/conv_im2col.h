// im2col + GEMM convolution in the default NCHW layout.
//
// This is the "framework default" convolution path (what TensorFlow/Eigen-class
// baselines execute): lower the convolution to a matrix multiply through an explicit
// column-buffer materialization, then call the fixed GEMM kernel. It pays the col-buffer
// bandwidth the direct NCHWc template avoids.
#ifndef NEOCPU_SRC_KERNELS_CONV_IM2COL_H_
#define NEOCPU_SRC_KERNELS_CONV_IM2COL_H_

#include "src/kernels/conv_params.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input NCHW; weight OIHW; output preallocated NCHW.
void ConvIm2col(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                Tensor* output, ThreadEngine* engine = nullptr);

Tensor ConvIm2col(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                  const Tensor* bias = nullptr, const Tensor* residual = nullptr,
                  const ConvEpilogue& epilogue = {}, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_IM2COL_H_
