// im2col + GEMM convolution in the default NCHW layout.
//
// This is the "framework default" convolution path (what TensorFlow/Eigen-class
// baselines execute): lower the convolution to a matrix multiply through an explicit
// column-buffer materialization, then run the packed GEMM family at its default
// blocking (fixed, not schedule-searched — the baseline keeps the paper's framing
// while sharing the register micro-kernels with the tuned dense path). It pays the
// col-buffer materialization and packing bandwidth the direct NCHWc template avoids.
#ifndef NEOCPU_SRC_KERNELS_CONV_IM2COL_H_
#define NEOCPU_SRC_KERNELS_CONV_IM2COL_H_

#include "src/kernels/conv_params.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Workspace-size query hook for the memory planner: bytes of scratch one ConvIm2col
// call needs — the {IC*KH*KW, OH*OW} column materialization plus the packed-B/packed-A
// GEMM panels, all reused across batch images.
std::size_t ConvIm2colWorkspaceBytes(const Conv2dParams& params);

// input NCHW; weight OIHW; output preallocated NCHW. `workspace` (optional) must hold
// ConvIm2colWorkspaceBytes(params); when null the kernel allocates its column buffer.
void ConvIm2col(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                Tensor* output, ThreadEngine* engine = nullptr, float* workspace = nullptr);

Tensor ConvIm2col(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                  const Tensor* bias = nullptr, const Tensor* residual = nullptr,
                  const ConvEpilogue& epilogue = {}, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_IM2COL_H_
