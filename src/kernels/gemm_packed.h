// Tuned, packed, schedule-searched fp32 GEMM (the paper's blocking methodology applied
// to the dense/matmul workload class). C[M,N] = A[M,K] * B[K,N] with a fused
// bias/ReLU epilogue; B is pre-packed into nr-column panels (at compile time for dense
// weights, at run time for the im2col column buffer), A is packed into mr-row panels
// in a caller-provided workspace (arena slice on the memory-planned path). The macro
// tile drivers are compiled per ISA (baseline/avx2/avx512) behind the same cpuid
// dispatcher structure as conv_nchwc_int8.
#ifndef NEOCPU_SRC_KERNELS_GEMM_PACKED_H_
#define NEOCPU_SRC_KERNELS_GEMM_PACKED_H_

#include <cstddef>
#include <cstdint>

#include "src/kernels/gemm_schedule.h"
#include "src/runtime/thread_engine.h"

namespace neocpu {

// Packed-operand sizes in elements (floats). Panels are zero-padded to full mr/nr.
std::size_t PackedAF32Elems(std::int64_t m, std::int64_t k, const GemmSchedule& s);
std::size_t PackedBF32Elems(std::int64_t n, std::int64_t k, const GemmSchedule& s);

// Packs row-major A[m][k] into [ceil(m/mr)][k][mr] panels.
void PackAF32(const float* a, std::int64_t m, std::int64_t k, const GemmSchedule& s,
              float* out, ThreadEngine* engine = nullptr);
// Packs row-major B[k][n] into [ceil(n/nr)][k][nr] panels.
void PackBF32(const float* b, std::int64_t n, std::int64_t k, const GemmSchedule& s,
              float* out);
// Same, but from the transposed source W[n][k] (a dense layer's {Out, In} weight:
// B = W^T without materializing the transpose).
void PackBF32FromTransposed(const float* w, std::int64_t n, std::int64_t k,
                            const GemmSchedule& s, float* out);

// Active ISA tier name ("baseline", "avx2", "avx512") and the override hook used by
// the parity tests and bench ablations. Empty/null name resets to auto (widest tier);
// returns false for a name the running CPU/build cannot execute.
const char* GemmPackedIsaName();
bool SetGemmPackedIsaOverride(const char* name);

// C[m][n] = A[m][k] * packed_b (+ bias, ReLU). `workspace` holds the packed A panels
// (PackedAF32Elems floats); pass null to let the kernel allocate one internally
// (bench/test convenience — the planned executor always passes an arena slice).
void GemmPackedF32(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                   const float* packed_b, const float* bias, bool relu, float* c,
                   const GemmSchedule& s, float* workspace = nullptr,
                   ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_GEMM_PACKED_H_
