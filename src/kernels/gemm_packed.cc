// Baseline instantiation + operand packing + validation + runtime ISA dispatch of the
// packed fp32 GEMM. The baseline tile driver compiles at the library's portable ISA;
// wider variants live in gemm_packed_avx{2,512}.cc behind per-file flags, and this TU
// (always portable code itself) picks the widest one the running CPU supports.
#define NEOCPU_GEMM_VARIANT_NS gemm_f32_baseline
#define NEOCPU_GEMM_TILE_FN GemmF32TileBaseline
#include "src/kernels/gemm_packed_impl.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "src/base/logging.h"
#include "src/kernels/gemm_packed.h"

namespace neocpu {
namespace detail {

#ifdef NEOCPU_GEMM_HAVE_AVX2
void GemmF32TileAvx2(const GemmF32Args&, std::int64_t);
#endif
#ifdef NEOCPU_GEMM_HAVE_AVX512
void GemmF32TileAvx512(const GemmF32Args&, std::int64_t);
#endif

namespace {

struct GemmDispatch {
  GemmF32TileFn fn = &GemmF32TileBaseline;
  const char* name = "baseline";
};

// Every tier the running CPU can execute, widest first; same structure as the s8 conv
// dispatcher (auto pick is the front, the override hook selects by name).
struct GemmTiers {
  GemmDispatch tiers[3];
  int count = 0;
};

GemmTiers EnumerateTiers() {
  GemmTiers t;
#if defined(__x86_64__) && defined(__GNUC__)
  __builtin_cpu_init();
#ifdef NEOCPU_GEMM_HAVE_AVX512
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq")) {
    t.tiers[t.count++] = {&GemmF32TileAvx512, "avx512"};
  }
#endif
#ifdef NEOCPU_GEMM_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    t.tiers[t.count++] = {&GemmF32TileAvx2, "avx2"};
  }
#endif
#endif
  t.tiers[t.count++] = {&GemmF32TileBaseline, "baseline"};
  return t;
}

const GemmTiers& Tiers() {
  static const GemmTiers t = EnumerateTiers();
  return t;
}

// -1: auto (widest tier). Otherwise an index into Tiers() pinned by the override hook.
int g_isa_override = -1;

const GemmDispatch& Dispatch() {
  const GemmTiers& t = Tiers();
  const int at = g_isa_override >= 0 ? g_isa_override : 0;
  return t.tiers[at];
}

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace
}  // namespace detail

const char* GemmPackedIsaName() { return detail::Dispatch().name; }

bool SetGemmPackedIsaOverride(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    detail::g_isa_override = -1;
    return true;
  }
  const detail::GemmTiers& t = detail::Tiers();
  for (int i = 0; i < t.count; ++i) {
    if (std::string_view(t.tiers[i].name) == name) {
      detail::g_isa_override = i;
      return true;
    }
  }
  return false;
}

std::size_t PackedAF32Elems(std::int64_t m, std::int64_t k, const GemmSchedule& s) {
  return static_cast<std::size_t>(detail::CeilDiv(m, s.mr) * s.mr * k);
}

std::size_t PackedBF32Elems(std::int64_t n, std::int64_t k, const GemmSchedule& s) {
  return static_cast<std::size_t>(detail::CeilDiv(n, s.nr) * s.nr * k);
}

void PackAF32(const float* a, std::int64_t m, std::int64_t k, const GemmSchedule& s,
              float* out, ThreadEngine* engine) {
  const std::int64_t mr = s.mr;
  const std::int64_t panels = detail::CeilDiv(m, mr);
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  ParallelFor(eng, panels, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      float* dst = out + p * k * mr;
      const std::int64_t rows = mr < m - p * mr ? mr : m - p * mr;
      for (std::int64_t t = 0; t < k; ++t) {
        for (std::int64_t r = 0; r < mr; ++r) {
          dst[t * mr + r] = r < rows ? a[(p * mr + r) * k + t] : 0.0f;
        }
      }
    }
  });
}

void PackBF32(const float* b, std::int64_t n, std::int64_t k, const GemmSchedule& s,
              float* out) {
  const std::int64_t nr = s.nr;
  const std::int64_t panels = detail::CeilDiv(n, nr);
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dst = out + p * k * nr;
    const std::int64_t cols = nr < n - p * nr ? nr : n - p * nr;
    for (std::int64_t t = 0; t < k; ++t) {
      const float* src = b + t * n + p * nr;
      for (std::int64_t j = 0; j < cols; ++j) {
        dst[t * nr + j] = src[j];
      }
      for (std::int64_t j = cols; j < nr; ++j) {
        dst[t * nr + j] = 0.0f;
      }
    }
  }
}

void PackBF32FromTransposed(const float* w, std::int64_t n, std::int64_t k,
                            const GemmSchedule& s, float* out) {
  const std::int64_t nr = s.nr;
  const std::int64_t panels = detail::CeilDiv(n, nr);
  for (std::int64_t p = 0; p < panels; ++p) {
    float* dst = out + p * k * nr;
    const std::int64_t cols = nr < n - p * nr ? nr : n - p * nr;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float* src = w + (p * nr + j) * k;
      for (std::int64_t t = 0; t < k; ++t) {
        dst[t * nr + j] = src[t];
      }
    }
    if (cols < nr) {
      for (std::int64_t t = 0; t < k; ++t) {
        for (std::int64_t j = cols; j < nr; ++j) {
          dst[t * nr + j] = 0.0f;
        }
      }
    }
  }
}

void GemmPackedF32(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                   const float* packed_b, const float* bias, bool relu, float* c,
                   const GemmSchedule& s, float* workspace, ThreadEngine* engine) {
  NEOCPU_CHECK(m > 0 && n > 0 && k > 0);
  NEOCPU_CHECK(s.mc > 0 && s.nc > 0 && s.kc > 0);
  NEOCPU_CHECK(s.mr > 0 && s.mr <= kMaxGemmMr) << s.ToString();
  NEOCPU_CHECK(s.nr > 0 && s.nr <= kMaxGemmNr) << s.ToString();
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);

  std::vector<float> owned;  // fallback when the caller supplies no planned workspace
  float* ap = workspace;
  if (ap == nullptr) {
    owned.resize(PackedAF32Elems(m, k, s));
    ap = owned.data();
  }
  PackAF32(a, m, k, s, ap, &eng);

  detail::GemmF32Args args;
  args.m = m;
  args.n = n;
  args.k = k;
  // Macro tiles must start on packed-panel boundaries: round mc/nc up to the micro
  // tile so tile index -> panel index stays exact for any schedule.
  args.mc = detail::CeilDiv(s.mc, s.mr) * s.mr;
  args.nc = detail::CeilDiv(s.nc, s.nr) * s.nr;
  args.kc = s.kc;
  args.mr = s.mr;
  args.nr = s.nr;
  args.nb_count = detail::CeilDiv(n, args.nc);
  args.ap = ap;
  args.bp = packed_b;
  args.bias = bias;
  args.relu = relu;
  args.c = c;

  const detail::GemmF32TileFn tile_fn = detail::Dispatch().fn;
  const std::int64_t tiles = detail::CeilDiv(m, args.mc) * args.nb_count;
  ParallelFor(eng, tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t tile = begin; tile < end; ++tile) {
      tile_fn(args, tile);
    }
  });
}

}  // namespace neocpu
