#include "src/kernels/conv_ref.h"

#include <algorithm>

#include "src/base/logging.h"

namespace neocpu {

void ConvRefNCHW(const Conv2dParams& p, const Tensor& input, const Tensor& weight,
                 const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                 Tensor* output, ThreadEngine* engine) {
  NEOCPU_CHECK(output != nullptr);
  NEOCPU_CHECK_EQ(input.ndim(), 4);
  NEOCPU_CHECK_EQ(weight.ndim(), 4);
  const std::int64_t oh_count = p.OutH();
  const std::int64_t ow_count = p.OutW();
  const float* in_base = input.data();
  const float* w_base = weight.data();
  const float* bias_base = epilogue.bias && bias != nullptr ? bias->data() : nullptr;
  const float* res_base =
      epilogue.residual_add && residual != nullptr ? residual->data() : nullptr;
  float* out_base = output->data();

  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);

  const std::int64_t in_plane = p.in_h * p.in_w;
  const std::int64_t out_plane = oh_count * ow_count;

  ParallelFor(eng, p.batch * p.out_c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t idx = begin; idx < end; ++idx) {
      const std::int64_t n = idx / p.out_c;
      const std::int64_t oc = idx % p.out_c;
      float* out_ch = out_base + idx * out_plane;
      const float init = bias_base != nullptr ? bias_base[oc] : 0.0f;
      std::fill(out_ch, out_ch + out_plane, init);

      for (std::int64_t ic = 0; ic < p.in_c; ++ic) {
        const float* in_ch = in_base + (n * p.in_c + ic) * in_plane;
        const float* w_ch = w_base + (oc * p.in_c + ic) * p.kernel_h * p.kernel_w;
        for (std::int64_t kh = 0; kh < p.kernel_h; ++kh) {
          for (std::int64_t kw = 0; kw < p.kernel_w; ++kw) {
            const float wv = w_ch[kh * p.kernel_w + kw];
            if (wv == 0.0f) {
              continue;
            }
            for (std::int64_t oh = 0; oh < oh_count; ++oh) {
              const std::int64_t ih = oh * p.stride_h - p.pad_h + kh;
              if (ih < 0 || ih >= p.in_h) {
                continue;
              }
              const float* in_row = in_ch + ih * p.in_w;
              float* out_row = out_ch + oh * ow_count;
              // Valid out_width range for this kw (unguarded, vectorizable inner loop).
              const std::int64_t lo =
                  std::max<std::int64_t>(0, (p.pad_w - kw + p.stride_w - 1) / p.stride_w);
              // Guard the numerator: truncation-toward-zero on a negative value would
              // yield hi=1 instead of 0 and read one element past the input row.
              const std::int64_t hi_num = p.in_w - 1 + p.pad_w - kw;
              const std::int64_t hi =
                  hi_num < 0
                      ? 0
                      : std::min<std::int64_t>(ow_count, hi_num / p.stride_w + 1);
              if (p.stride_w == 1) {
                const float* in_shift = in_row - p.pad_w + kw;
                for (std::int64_t ow = lo; ow < hi; ++ow) {
                  out_row[ow] += in_shift[ow] * wv;
                }
              } else {
                for (std::int64_t ow = lo; ow < hi; ++ow) {
                  out_row[ow] += in_row[ow * p.stride_w - p.pad_w + kw] * wv;
                }
              }
            }
          }
        }
      }

      if (res_base != nullptr) {
        const float* res_ch = res_base + idx * out_plane;
        for (std::int64_t i = 0; i < out_plane; ++i) {
          out_ch[i] += res_ch[i];
        }
      }
      if (epilogue.relu) {
        for (std::int64_t i = 0; i < out_plane; ++i) {
          out_ch[i] = out_ch[i] > 0.0f ? out_ch[i] : 0.0f;
        }
      }
    }
  });
}

Tensor ConvRefNCHW(const Conv2dParams& p, const Tensor& input, const Tensor& weight,
                   const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                   ThreadEngine* engine) {
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  ConvRefNCHW(p, input, weight, bias, residual, epilogue, &out, engine);
  return out;
}

}  // namespace neocpu
