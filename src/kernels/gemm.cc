#include "src/kernels/gemm.h"

#include <algorithm>
#include <cstring>

namespace neocpu {
namespace {

constexpr std::int64_t kMr = 4;   // rows per register tile
constexpr std::int64_t kNr = 32;  // columns per register tile (two AVX-512 vectors x 4 rows)

// 4x32 register-tiled inner kernel over the full K extent.
void MicroTile(std::int64_t k, std::int64_t n, const float* __restrict a0,
               const float* __restrict a1, const float* __restrict a2,
               const float* __restrict a3, const float* __restrict b, float* __restrict c0,
               float* __restrict c1, float* __restrict c2, float* __restrict c3,
               bool accumulate) {
  float acc[kMr][kNr];
  if (accumulate) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      acc[0][j] = c0[j];
      acc[1][j] = c1[j];
      acc[2][j] = c2[j];
      acc[3][j] = c3[j];
    }
  } else {
    std::memset(acc, 0, sizeof(acc));
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* __restrict brow = b + kk * n;
    const float av0 = a0[kk];
    const float av1 = a1[kk];
    const float av2 = a2[kk];
    const float av3 = a3[kk];
    // SIMD dimension (see conv_nchwc.cc for why the annotation is load-bearing).
#pragma omp simd
    for (std::int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += av0 * bv;
      acc[1][j] += av1 * bv;
      acc[2][j] += av2 * bv;
      acc[3][j] += av3 * bv;
    }
  }
  for (std::int64_t j = 0; j < kNr; ++j) {
    c0[j] = acc[0][j];
    c1[j] = acc[1][j];
    c2[j] = acc[2][j];
    c3[j] = acc[3][j];
  }
}

// Fallback for row/column tails: mr rows x nr cols, runtime sizes.
void MicroTail(std::int64_t mr, std::int64_t nr, std::int64_t k, std::int64_t lda,
               std::int64_t n, const float* a, const float* b, float* c, bool accumulate) {
  for (std::int64_t i = 0; i < mr; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < nr; ++j) {
      float sum = accumulate ? crow[j] : 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        sum += arow[kk] * b[kk * n + j];
      }
      crow[j] = sum;
    }
  }
}

}  // namespace

void Gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a, const float* b,
          float* c, bool accumulate, ThreadEngine* engine) {
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  const std::int64_t row_tiles = (m + kMr - 1) / kMr;
  ParallelFor(eng, row_tiles, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t t = begin; t < end; ++t) {
      const std::int64_t i0 = t * kMr;
      const std::int64_t mr = std::min<std::int64_t>(kMr, m - i0);
      std::int64_t j0 = 0;
      if (mr == kMr) {
        for (; j0 + kNr <= n; j0 += kNr) {
          MicroTile(k, n, a + (i0 + 0) * k, a + (i0 + 1) * k, a + (i0 + 2) * k,
                    a + (i0 + 3) * k, b + j0, c + (i0 + 0) * n + j0, c + (i0 + 1) * n + j0,
                    c + (i0 + 2) * n + j0, c + (i0 + 3) * n + j0, accumulate);
        }
      }
      if (j0 < n || mr != kMr) {
        MicroTail(mr, n - j0, k, k, n, a + i0 * k, b + j0, c + i0 * n + j0, accumulate);
      }
    }
  });
}

}  // namespace neocpu
