// Baseline instantiation + validation + runtime ISA dispatch of the s8 NCHWc direct
// convolution. The baseline row driver compiles at the library's portable ISA; wider
// variants live in conv_nchwc_int8_avx{2,512}.cc behind per-file flags, and this TU
// (always portable code itself) picks the widest one the running CPU supports.
#define NEOCPU_S8_VARIANT_NS s8_baseline
#define NEOCPU_S8_ROW_FN ConvS8RowBaseline
#include "src/kernels/conv_nchwc_int8_impl.h"

#include <string_view>

#include "src/base/logging.h"
#include "src/kernels/conv_nchwc_int8.h"

namespace neocpu {
namespace detail {

#ifdef NEOCPU_S8_HAVE_AVX2
void ConvS8RowAvx2(const S8ConvArgs&, std::int64_t);
#endif
#ifdef NEOCPU_S8_HAVE_AVX512
void ConvS8RowAvx512(const S8ConvArgs&, std::int64_t);
#endif
#ifdef NEOCPU_S8_HAVE_AVX512VNNI
void ConvS8RowAvx512Vnni(const S8ConvArgs&, std::int64_t);
#endif

namespace {

struct S8Dispatch {
  S8RowFn fn = &ConvS8RowBaseline;
  const char* name = "baseline";
};

// Every tier the running CPU can execute, widest first. The auto pick is the front;
// the override hook (parity tests, bench ablations) selects any listed tier by name.
struct S8Tiers {
  S8Dispatch tiers[4];
  int count = 0;
};

S8Tiers EnumerateTiers() {
  S8Tiers t;
#if defined(__x86_64__) && defined(__GNUC__)
  __builtin_cpu_init();
#ifdef NEOCPU_S8_HAVE_AVX512VNNI
  if (__builtin_cpu_supports("avx512vnni") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512dq")) {
    t.tiers[t.count++] = {&ConvS8RowAvx512Vnni, "avx512vnni"};
  }
#endif
#ifdef NEOCPU_S8_HAVE_AVX512
  if (__builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512dq")) {
    t.tiers[t.count++] = {&ConvS8RowAvx512, "avx512"};
  }
#endif
#ifdef NEOCPU_S8_HAVE_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    t.tiers[t.count++] = {&ConvS8RowAvx2, "avx2"};
  }
#endif
#endif
  t.tiers[t.count++] = {&ConvS8RowBaseline, "baseline"};
  return t;
}

const S8Tiers& Tiers() {
  static const S8Tiers t = EnumerateTiers();
  return t;
}

// -1: auto (widest tier). Otherwise an index into Tiers() pinned by the override hook.
int g_isa_override = -1;

const S8Dispatch& Dispatch() {
  const S8Tiers& t = Tiers();
  const int at = g_isa_override >= 0 ? g_isa_override : 0;
  return t.tiers[at];
}

}  // namespace
}  // namespace detail

const char* ConvNCHWcS8IsaName() { return detail::Dispatch().name; }

bool SetConvNCHWcS8IsaOverride(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    detail::g_isa_override = -1;
    return true;
  }
  const detail::S8Tiers& t = detail::Tiers();
  for (int i = 0; i < t.count; ++i) {
    if (std::string_view(t.tiers[i].name) == name) {
      detail::g_isa_override = i;
      return true;
    }
  }
  return false;
}

void ConvNCHWcS8(const Conv2dParams& p, const ConvSchedule& s, const Tensor& input,
                 const Tensor& weight, const Tensor* bias, const Tensor& multiplier,
                 const ConvEpilogue& epilogue, bool requant, Tensor* output,
                 ThreadEngine* engine, std::int32_t out_zero, std::int32_t in_zero) {
  NEOCPU_CHECK(output != nullptr);
  const bool src_u8 = input.dtype() == DType::kU8;
  NEOCPU_CHECK(input.dtype() == DType::kS8 || src_u8) << input.DebugString();
  NEOCPU_CHECK(weight.dtype() == DType::kS8) << weight.DebugString();
  if (requant) {
    NEOCPU_CHECK(output->dtype() == DType::kS8 || output->dtype() == DType::kU8)
        << output->DebugString();
  } else {
    NEOCPU_CHECK(output->dtype() == DType::kF32) << output->DebugString();
  }
  // u8 activations pair with VNNI-packed weights: 4 consecutive input channels feed
  // one dot-product lane, so the channel block must split into quads.
  if (src_u8) {
    NEOCPU_CHECK_EQ(s.ic_bn % 4, 0) << "u8 conv requires ic_bn % 4 == 0";
  }
  NEOCPU_CHECK(multiplier.dtype() == DType::kF32);
  NEOCPU_CHECK_EQ(multiplier.NumElements(), p.out_c);
  NEOCPU_CHECK_EQ(input.ndim(), 5);
  NEOCPU_CHECK_EQ(weight.ndim(), 6);
  NEOCPU_CHECK_EQ(output->ndim(), 5);
  NEOCPU_CHECK_LE(s.reg_n, kMaxRegN);
  NEOCPU_CHECK_LE(s.oc_bn, kMaxChannelBlock);
  NEOCPU_CHECK_LE(s.ic_bn, kMaxChannelBlock);
  NEOCPU_CHECK_EQ(input.dim(4), s.ic_bn);
  NEOCPU_CHECK_EQ(output->dim(4), s.oc_bn);
  NEOCPU_CHECK_EQ(weight.dim(4), s.ic_bn);
  NEOCPU_CHECK_EQ(weight.dim(5), s.oc_bn);
  NEOCPU_CHECK_EQ(p.in_c % s.ic_bn, 0);
  NEOCPU_CHECK_EQ(p.out_c % s.oc_bn, 0);
  NEOCPU_CHECK(!epilogue.bias || (bias != nullptr && bias->dtype() == DType::kS32));
  NEOCPU_CHECK(!epilogue.residual_add) << "int8 conv does not fuse residual adds";

  detail::S8ConvArgs a;
  a.n = p.batch;
  a.icb_count = p.in_c / s.ic_bn;
  a.ih = p.in_h;
  a.iw = p.in_w;
  a.icb = s.ic_bn;
  a.ocb_count = p.out_c / s.oc_bn;
  a.oh = p.OutH();
  a.ow = p.OutW();
  a.ocb = s.oc_bn;
  a.kh = p.kernel_h;
  a.kw = p.kernel_w;
  a.sh = p.stride_h;
  a.sw = p.stride_w;
  a.ph = p.pad_h;
  a.pw = p.pad_w;
  a.in_sh = a.iw * a.icb;
  a.in_sc = a.ih * a.in_sh;
  a.in_sn = a.icb_count * a.in_sc;
  a.w_sc = a.kh * a.kw * a.icb * a.ocb;
  a.w_so = a.icb_count * a.w_sc;
  a.out_sh = a.ow * a.ocb;
  a.out_sc = a.oh * a.out_sh;
  a.out_sn = a.ocb_count * a.out_sc;
  a.reg_n = s.reg_n;
  a.unroll_ker = s.unroll_ker;
  // Interior out-width range where no horizontal padding check is needed (same bounds
  // as the fp32 template).
  a.ow_lo = a.pw == 0 ? 0 : (a.pw + a.sw - 1) / a.sw;
  const std::int64_t ow_hi_incl = (a.iw + a.pw - a.kw) / a.sw;
  a.ow_hi = a.ow < ow_hi_incl + 1 ? a.ow : ow_hi_incl + 1;

  a.in = reinterpret_cast<const std::int8_t*>(input.data());
  a.w = weight.data_as<std::int8_t>();
  a.bias = epilogue.bias ? bias->data_as<std::int32_t>() : nullptr;
  a.mult = multiplier.data_as<float>();
  a.relu = epilogue.relu;
  a.requant = requant;
  a.src_u8 = src_u8;
  a.in_zero = src_u8 ? in_zero : 0;
  a.out_u8 = requant && output->dtype() == DType::kU8;
  a.out_zero = a.out_u8 ? out_zero : 0;
  a.out = output->data();

  const detail::S8RowFn row_fn = detail::Dispatch().fn;
  SerialEngine serial;
  ThreadEngine& eng = engine != nullptr ? *engine : static_cast<ThreadEngine&>(serial);
  const std::int64_t total_rows = a.n * a.ocb_count * a.oh;
  ParallelFor(eng, total_rows, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t row = begin; row < end; ++row) {
      row_fn(a, row);
    }
  });
}

}  // namespace neocpu
