// Direct convolution in the default NCHW layout.
//
// This is both (a) the correctness oracle for every other convolution path and (b) the
// Table 3 "Baseline" row: NCHW data layout "with proper vectorization and thread-level
// parallelization" but no blocked layout — the contiguous out_width inner loop
// auto-vectorizes, but kernel values cannot be register-blocked across channels.
#ifndef NEOCPU_SRC_KERNELS_CONV_REF_H_
#define NEOCPU_SRC_KERNELS_CONV_REF_H_

#include "src/kernels/conv_params.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// input NCHW {N, IC, IH, IW}; weight OIHW {OC, IC, KH, KW}; bias flat {OC} or null;
// residual NCHW (same dims as output) or null; output preallocated NCHW.
void ConvRefNCHW(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                 const Tensor* bias, const Tensor* residual, const ConvEpilogue& epilogue,
                 Tensor* output, ThreadEngine* engine = nullptr);

// Allocating convenience wrapper.
Tensor ConvRefNCHW(const Conv2dParams& params, const Tensor& input, const Tensor& weight,
                   const Tensor* bias = nullptr, const Tensor* residual = nullptr,
                   const ConvEpilogue& epilogue = {}, ThreadEngine* engine = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_KERNELS_CONV_REF_H_
