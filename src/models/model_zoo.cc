#include "src/models/model_zoo.h"

#include "src/base/logging.h"
#include "src/graph/builder.h"

namespace neocpu {

Graph BuildModel(const std::string& name, std::int64_t batch) {
  if (name == "tiny-cnn") {
    return BuildTinyCnn(batch);
  }
  if (name == "transformer-encoder") {
    return BuildTransformerEncoder(batch);
  }
  if (name == "resnet18") {
    return BuildResNet(18, batch);
  }
  if (name == "resnet34") {
    return BuildResNet(34, batch);
  }
  if (name == "resnet50") {
    return BuildResNet(50, batch);
  }
  if (name == "resnet101") {
    return BuildResNet(101, batch);
  }
  if (name == "resnet152") {
    return BuildResNet(152, batch);
  }
  if (name == "vgg11") {
    return BuildVgg(11, batch);
  }
  if (name == "vgg13") {
    return BuildVgg(13, batch);
  }
  if (name == "vgg16") {
    return BuildVgg(16, batch);
  }
  if (name == "vgg19") {
    return BuildVgg(19, batch);
  }
  if (name == "densenet121") {
    return BuildDenseNet(121, batch);
  }
  if (name == "densenet161") {
    return BuildDenseNet(161, batch);
  }
  if (name == "densenet169") {
    return BuildDenseNet(169, batch);
  }
  if (name == "densenet201") {
    return BuildDenseNet(201, batch);
  }
  if (name == "inception-v3") {
    return BuildInceptionV3(batch);
  }
  if (name == "ssd-resnet50") {
    return BuildSsdResNet50(batch);
  }
  LOG(FATAL) << "unknown model '" << name << "'";
  return {};
}

const std::vector<std::string>& ModelZooNames() {
  static const std::vector<std::string> kNames = {
      "resnet18",    "resnet34",    "resnet50",    "resnet101",    "resnet152",
      "vgg11",       "vgg13",       "vgg16",       "vgg19",        "densenet121",
      "densenet161", "densenet169", "densenet201", "inception-v3", "ssd-resnet50"};
  return kNames;
}

std::vector<std::int64_t> ModelInputDims(const std::string& name, std::int64_t batch) {
  if (name == "transformer-encoder") {
    return {batch, 8 * 64};  // {N, S*D} token embeddings, pre-flattened
  }
  std::int64_t image = 224;
  if (name == "inception-v3") {
    image = 299;
  } else if (name == "ssd-resnet50") {
    image = 512;
  } else if (name == "tiny-cnn") {
    image = 32;
  }
  return {batch, 3, image, image};
}

Graph BuildTinyCnn(std::int64_t batch, std::int64_t image) {
  GraphBuilder b("tiny-cnn");
  int x = b.Input({batch, 3, image, image});
  x = b.ConvBnRelu(x, 16, 3, 1, 1, "stem");
  x = b.MaxPool(x, 2, 2, 0);
  // One basic residual block so the serving tests cover the elementwise-add path.
  int shortcut = x;
  int y = b.ConvBnRelu(x, 16, 3, 1, 1, "block.conv1");
  y = b.Conv(y, 16, 3, 1, 1, false, "block.conv2");
  y = b.BatchNorm(y);
  y = b.Add(y, shortcut);
  y = b.Relu(y);
  y = b.ConvBnRelu(y, 32, 3, 2, 1, "head.conv");
  y = b.GlobalAvgPool(y);
  y = b.Flatten(y);
  y = b.Dense(y, 10);
  y = b.Softmax(y);
  return b.Finish({y});
}

}  // namespace neocpu
