// VGG (Simonyan & Zisserman, 2014) graph builders: depths 11/13/16/19, the original
// no-batch-norm variants (biased convolutions), matching the paper's zoo.
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"

namespace neocpu {

Graph BuildVgg(int depth, std::int64_t batch, std::int64_t image) {
  std::vector<int> per_stage;
  switch (depth) {
    case 11:
      per_stage = {1, 1, 2, 2, 2};
      break;
    case 13:
      per_stage = {2, 2, 2, 2, 2};
      break;
    case 16:
      per_stage = {2, 2, 3, 3, 3};
      break;
    case 19:
      per_stage = {2, 2, 4, 4, 4};
      break;
    default:
      LOG(FATAL) << "unsupported VGG depth " << depth;
  }
  const std::vector<std::int64_t> channels = {64, 128, 256, 512, 512};

  GraphBuilder b(StrFormat("vgg%d", depth), /*seed=*/200 + static_cast<unsigned>(depth));
  int x = b.Input({batch, 3, image, image});
  for (std::size_t stage = 0; stage < per_stage.size(); ++stage) {
    for (int i = 0; i < per_stage[stage]; ++i) {
      x = b.Conv(x, channels[stage], 3, 1, 1, /*bias=*/true,
                 StrFormat("conv%zu_%d", stage + 1, i + 1));
      x = b.Relu(x);
    }
    x = b.MaxPool(x, 2, 2, 0);
  }
  x = b.Flatten(x);
  x = b.Dense(x, 4096, /*relu=*/true, "fc6");
  x = b.Dropout(x);
  x = b.Dense(x, 4096, /*relu=*/true, "fc7");
  x = b.Dropout(x);
  x = b.Dense(x, 1000, /*relu=*/false, "fc8");
  x = b.Softmax(x);
  return b.Finish({x});
}

}  // namespace neocpu
