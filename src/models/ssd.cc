// SSD (Liu et al., ECCV 2016) with a ResNet-50 backbone at 512x512 — the paper's object
// detection workload.
//
// The structure follows the GluonCV ssd_512_resnet50_v1 recipe: ResNet-50 stages 1-4 as
// the backbone, four extra stride-2 feature blocks, per-feature-map class/location
// convolution heads, NHWC-flattened + concatenated predictions, softmax over classes,
// and a MultiboxDetection (decode + NMS) op. Priors are input-independent and are
// pre-computed into a constant at build time. Unlike OpenVINO's benchmark (Table 2
// footnote), the detection stage is part of the timed graph.
//
// The many concatenations make the conv-layout dependency graph rich enough that the
// exact DP's state space explodes, which is what forces the PBQP approximation — the
// behaviour §3.3.2 reports for SSD.
#include <cstring>

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/graph/builder.h"
#include "src/kernels/multibox.h"
#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

int Bottleneck(GraphBuilder& b, int in_id, std::int64_t channels, std::int64_t stride,
               bool project, const std::string& name) {
  const std::int64_t mid = channels / 4;
  int shortcut = in_id;
  if (project) {
    shortcut = b.Conv(in_id, channels, 1, stride, 0, false, name + ".proj");
    shortcut = b.BatchNorm(shortcut);
  }
  int x = b.ConvBnRelu(in_id, mid, 1, 1, 0, name + ".conv1");
  x = b.ConvBnRelu(x, mid, 3, stride, 1, name + ".conv2");
  x = b.Conv(x, channels, 1, 1, 0, false, name + ".conv3");
  x = b.BatchNorm(x);
  x = b.Add(x, shortcut);
  return b.Relu(x);
}

int ResNetStage(GraphBuilder& b, int x, std::int64_t channels, int units, std::int64_t stride,
                const std::string& name) {
  for (int unit = 0; unit < units; ++unit) {
    x = Bottleneck(b, x, channels, unit == 0 ? stride : 1, unit == 0,
                   StrFormat("%s.unit%d", name.c_str(), unit + 1));
  }
  return x;
}

}  // namespace

Graph BuildSsdResNet50(std::int64_t batch, std::int64_t image, std::int64_t num_classes) {
  GraphBuilder b("ssd-resnet50", /*seed=*/500);
  int x = b.Input({batch, 3, image, image});
  x = b.ConvBnRelu(x, 64, 7, 2, 3, "stem");
  x = b.MaxPool(x, 3, 2, 1);
  x = ResNetStage(b, x, 256, 3, 1, "stage1");
  x = ResNetStage(b, x, 512, 4, 2, "stage2");
  const int stage3 = ResNetStage(b, x, 1024, 6, 2, "stage3");   // image/16
  const int stage4 = ResNetStage(b, stage3, 2048, 3, 2, "stage4");  // image/32

  // Extra stride-2 feature pyramid blocks.
  std::vector<int> features = {stage3, stage4};
  int f = stage4;
  const std::vector<std::pair<std::int64_t, std::int64_t>> extra = {
      {256, 512}, {128, 256}, {128, 256}, {128, 256}};
  for (std::size_t i = 0; i < extra.size(); ++i) {
    f = b.ConvBnRelu(f, extra[i].first, 1, 1, 0, StrFormat("extra%zu.reduce", i + 1));
    f = b.ConvBnRelu(f, extra[i].second, 3, 2, 1, StrFormat("extra%zu.conv", i + 1));
    features.push_back(f);
  }

  // Anchor configuration: SSD512-style scales, 4/6/6/6/4/4 priors per location.
  const std::vector<std::vector<float>> sizes = {{0.07f, 0.12f}, {0.15f, 0.23f},
                                                 {0.33f, 0.41f}, {0.51f, 0.59f},
                                                 {0.69f, 0.77f}, {0.87f, 0.95f}};
  const std::vector<std::vector<float>> ratios = {{1.0f, 2.0f, 0.5f},
                                                  {1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f},
                                                  {1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f},
                                                  {1.0f, 2.0f, 0.5f, 3.0f, 1.0f / 3.0f},
                                                  {1.0f, 2.0f, 0.5f},
                                                  {1.0f, 2.0f, 0.5f}};

  std::vector<int> cls_flat;
  std::vector<int> loc_flat;
  std::vector<Tensor> prior_parts;
  std::int64_t total_anchors = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const auto& dims = b.graph().node(features[i]).out_dims;
    MultiboxPriorParams prior;
    prior.feature_h = dims[2];
    prior.feature_w = dims[3];
    prior.sizes = sizes[i];
    prior.ratios = ratios[i];
    const std::int64_t per_loc = PriorsPerLocation(prior);
    prior_parts.push_back(MultiboxPrior(prior));
    total_anchors += dims[2] * dims[3] * per_loc;

    int cls = b.Conv(features[i], per_loc * num_classes, 3, 1, 1, true,
                     StrFormat("head%zu.cls", i + 1));
    int loc = b.Conv(features[i], per_loc * 4, 3, 1, 1, true,
                     StrFormat("head%zu.loc", i + 1));
    // NHWC flattening keeps (y, x, prior) anchor order aligned with the prior tensor.
    cls_flat.push_back(b.FlattenNHWC(cls));
    loc_flat.push_back(b.FlattenNHWC(loc));
  }

  // Assemble the constant anchor tensor {A, 4}.
  Tensor anchors = Tensor::Empty({total_anchors, 4}, Layout::Flat());
  std::int64_t offset = 0;
  for (const Tensor& part : prior_parts) {
    std::memcpy(anchors.data() + offset * 4, part.data(),
                static_cast<std::size_t>(part.NumElements()) * sizeof(float));
    offset += part.dim(0);
  }
  NEOCPU_CHECK_EQ(offset, total_anchors);
  const int anchors_id = b.Constant(std::move(anchors), "anchors");

  int cls_all = b.Concat(cls_flat);                              // {N, A*classes}
  cls_all = b.Reshape(cls_all, {total_anchors, num_classes});    // {A, classes}
  cls_all = b.Softmax(cls_all);
  int loc_all = b.Concat(loc_flat);  // {N, A*4}

  MultiboxDetectionParams det;
  det.num_classes = num_classes;
  const int out = b.MultiboxDetect(cls_all, loc_all, anchors_id, det);
  return b.Finish({out});
}

}  // namespace neocpu
