// Inception-v3 (Szegedy et al., CVPR 2016) graph builder, 299x299 input.
//
// The factorized 1x7/7x1 convolutions exercise the non-square kernel path of the
// template; the four-way branch concatenations exercise multi-producer layout agreement
// in the global search.
#include "src/base/string_util.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

// conv + BN + ReLU with a rectangular kernel.
int BasicConv(GraphBuilder& b, int in_id, std::int64_t out_c, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t ph, std::int64_t pw, const std::string& name) {
  int x = b.ConvRect(in_id, out_c, kh, kw, stride, ph, pw, false, name);
  x = b.BatchNorm(x);
  return b.Relu(x);
}

int BasicConvSq(GraphBuilder& b, int in_id, std::int64_t out_c, std::int64_t k,
                std::int64_t stride, std::int64_t pad, const std::string& name) {
  return BasicConv(b, in_id, out_c, k, k, stride, pad, pad, name);
}

// 35x35 block: 1x1 / 5x5 / double-3x3 / pool branches.
int InceptionA(GraphBuilder& b, int x, std::int64_t pool_features, const std::string& name) {
  int b1 = BasicConvSq(b, x, 64, 1, 1, 0, name + ".b1");
  int b2 = BasicConvSq(b, x, 48, 1, 1, 0, name + ".b2a");
  b2 = BasicConvSq(b, b2, 64, 5, 1, 2, name + ".b2b");
  int b3 = BasicConvSq(b, x, 64, 1, 1, 0, name + ".b3a");
  b3 = BasicConvSq(b, b3, 96, 3, 1, 1, name + ".b3b");
  b3 = BasicConvSq(b, b3, 96, 3, 1, 1, name + ".b3c");
  int b4 = b.AvgPool(x, 3, 1, 1);
  b4 = BasicConvSq(b, b4, pool_features, 1, 1, 0, name + ".b4");
  return b.Concat({b1, b2, b3, b4});
}

// 35x35 -> 17x17 grid reduction.
int ReductionA(GraphBuilder& b, int x, const std::string& name) {
  int b1 = BasicConvSq(b, x, 384, 3, 2, 0, name + ".b1");
  int b2 = BasicConvSq(b, x, 64, 1, 1, 0, name + ".b2a");
  b2 = BasicConvSq(b, b2, 96, 3, 1, 1, name + ".b2b");
  b2 = BasicConvSq(b, b2, 96, 3, 2, 0, name + ".b2c");
  int b3 = b.MaxPool(x, 3, 2, 0);
  return b.Concat({b1, b2, b3});
}

// 17x17 block with factorized 7x7 convolutions.
int InceptionB(GraphBuilder& b, int x, std::int64_t c7, const std::string& name) {
  int b1 = BasicConvSq(b, x, 192, 1, 1, 0, name + ".b1");
  int b2 = BasicConvSq(b, x, c7, 1, 1, 0, name + ".b2a");
  b2 = BasicConv(b, b2, c7, 1, 7, 1, 0, 3, name + ".b2b");
  b2 = BasicConv(b, b2, 192, 7, 1, 1, 3, 0, name + ".b2c");
  int b3 = BasicConvSq(b, x, c7, 1, 1, 0, name + ".b3a");
  b3 = BasicConv(b, b3, c7, 7, 1, 1, 3, 0, name + ".b3b");
  b3 = BasicConv(b, b3, c7, 1, 7, 1, 0, 3, name + ".b3c");
  b3 = BasicConv(b, b3, c7, 7, 1, 1, 3, 0, name + ".b3d");
  b3 = BasicConv(b, b3, 192, 1, 7, 1, 0, 3, name + ".b3e");
  int b4 = b.AvgPool(x, 3, 1, 1);
  b4 = BasicConvSq(b, b4, 192, 1, 1, 0, name + ".b4");
  return b.Concat({b1, b2, b3, b4});
}

// 17x17 -> 8x8 grid reduction.
int ReductionB(GraphBuilder& b, int x, const std::string& name) {
  int b1 = BasicConvSq(b, x, 192, 1, 1, 0, name + ".b1a");
  b1 = BasicConvSq(b, b1, 320, 3, 2, 0, name + ".b1b");
  int b2 = BasicConvSq(b, x, 192, 1, 1, 0, name + ".b2a");
  b2 = BasicConv(b, b2, 192, 1, 7, 1, 0, 3, name + ".b2b");
  b2 = BasicConv(b, b2, 192, 7, 1, 1, 3, 0, name + ".b2c");
  b2 = BasicConvSq(b, b2, 192, 3, 2, 0, name + ".b2d");
  int b3 = b.MaxPool(x, 3, 2, 0);
  return b.Concat({b1, b2, b3});
}

// 8x8 block with split 1x3/3x1 branches.
int InceptionC(GraphBuilder& b, int x, const std::string& name) {
  int b1 = BasicConvSq(b, x, 320, 1, 1, 0, name + ".b1");
  int b2 = BasicConvSq(b, x, 384, 1, 1, 0, name + ".b2a");
  int b2a = BasicConv(b, b2, 384, 1, 3, 1, 0, 1, name + ".b2b");
  int b2b = BasicConv(b, b2, 384, 3, 1, 1, 1, 0, name + ".b2c");
  int b2cat = b.Concat({b2a, b2b});
  int b3 = BasicConvSq(b, x, 448, 1, 1, 0, name + ".b3a");
  b3 = BasicConvSq(b, b3, 384, 3, 1, 1, name + ".b3b");
  int b3a = BasicConv(b, b3, 384, 1, 3, 1, 0, 1, name + ".b3c");
  int b3b = BasicConv(b, b3, 384, 3, 1, 1, 1, 0, name + ".b3d");
  int b3cat = b.Concat({b3a, b3b});
  int b4 = b.AvgPool(x, 3, 1, 1);
  b4 = BasicConvSq(b, b4, 192, 1, 1, 0, name + ".b4");
  return b.Concat({b1, b2cat, b3cat, b4});
}

}  // namespace

Graph BuildInceptionV3(std::int64_t batch, std::int64_t image) {
  GraphBuilder b("inception-v3", /*seed=*/400);
  int x = b.Input({batch, 3, image, image});
  x = BasicConvSq(b, x, 32, 3, 2, 0, "stem1");
  x = BasicConvSq(b, x, 32, 3, 1, 0, "stem2");
  x = BasicConvSq(b, x, 64, 3, 1, 1, "stem3");
  x = b.MaxPool(x, 3, 2, 0);
  x = BasicConvSq(b, x, 80, 1, 1, 0, "stem4");
  x = BasicConvSq(b, x, 192, 3, 1, 0, "stem5");
  x = b.MaxPool(x, 3, 2, 0);

  x = InceptionA(b, x, 32, "mixed0");
  x = InceptionA(b, x, 64, "mixed1");
  x = InceptionA(b, x, 64, "mixed2");
  x = ReductionA(b, x, "mixed3");
  x = InceptionB(b, x, 128, "mixed4");
  x = InceptionB(b, x, 160, "mixed5");
  x = InceptionB(b, x, 160, "mixed6");
  x = InceptionB(b, x, 192, "mixed7");
  x = ReductionB(b, x, "mixed8");
  x = InceptionC(b, x, "mixed9");
  x = InceptionC(b, x, "mixed10");

  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 1000, false, "fc1000");
  x = b.Softmax(x);
  return b.Finish({x});
}

}  // namespace neocpu
