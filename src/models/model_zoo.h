// The paper's 15-network evaluation zoo (§4, Table 2):
//   ResNet-18/34/50/101/152, VGG-11/13/16/19, DenseNet-121/161/169/201, Inception-v3,
//   and SSD with a ResNet-50 backbone.
//
// Input conventions follow the paper: 224x224 images, except Inception-v3 (299x299) and
// SSD (512x512); batch size 1 for latency measurement. Parameters are deterministic
// pseudo-random (see GraphBuilder) — the evaluation measures compute, not accuracy, and
// correctness is established by cross-executor equivalence tests.
#ifndef NEOCPU_SRC_MODELS_MODEL_ZOO_H_
#define NEOCPU_SRC_MODELS_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace neocpu {

// Individual builders.
Graph BuildResNet(int depth, std::int64_t batch = 1, std::int64_t image = 224);
Graph BuildVgg(int depth, std::int64_t batch = 1, std::int64_t image = 224);
Graph BuildDenseNet(int depth, std::int64_t batch = 1, std::int64_t image = 224);
Graph BuildInceptionV3(std::int64_t batch = 1, std::int64_t image = 299);
Graph BuildSsdResNet50(std::int64_t batch = 1, std::int64_t image = 512,
                       std::int64_t num_classes = 21);

// A small residual CNN (32x32 input, 10 classes, ~40k parameters) that compiles in
// milliseconds. Not part of the paper's Table-2 zoo: it exists so the serving tests,
// demos, and throughput benches can exercise the full compile→serve path with
// CI-friendly latencies.
Graph BuildTinyCnn(std::int64_t batch = 1, std::int64_t image = 32);

// A small transformer encoder (S=8 tokens of D=64, 4 heads, FFN 256, 2 layers, 10
// classes). Also off-zoo: the paper predates transformer serving, but the tuned GEMM
// family makes Dense a first-class workload, and this model is its end-to-end
// exercise — every projection and FFN layer is a schedule-searched, pre-packed GEMM.
Graph BuildTransformerEncoder(std::int64_t batch = 1, std::int64_t seq = 8,
                              std::int64_t dim = 64, std::int64_t heads = 4,
                              std::int64_t ffn = 256, int layers = 2,
                              std::int64_t num_classes = 10);

// By name: "resnet18".."resnet152", "vgg11".."vgg19", "densenet121".."densenet201",
// "inception-v3", "ssd-resnet50", plus the off-zoo "tiny-cnn" and
// "transformer-encoder".
Graph BuildModel(const std::string& name, std::int64_t batch = 1);

// The 15 names in the paper's Table 2 order.
const std::vector<std::string>& ModelZooNames();

// {N, 3, H, W} for a model's expected input ({N, S*D} for the transformer encoder).
std::vector<std::int64_t> ModelInputDims(const std::string& name, std::int64_t batch = 1);

}  // namespace neocpu

#endif  // NEOCPU_SRC_MODELS_MODEL_ZOO_H_
