#include "src/models/model_zoo.h"

#include "src/graph/builder.h"

namespace neocpu {

// A compact pre-classifier transformer encoder: the dense-dominated counterpart to
// tiny-cnn. Every FLOP-carrying op is a Dense (Q/K/V/out projections and the FFN), so
// the model exercises the tuned GEMM path end to end — schedule search, compile-time B
// packing, per-layer f32-vs-u8 selection — plus the attention/layer-norm runtime ops.
//
// Geometry is fixed small (S=8 tokens of D=64, 4 heads, FFN 256, 2 layers) so compiles
// stay CI-friendly; the batch folds into the GEMM M dimension via the {B, S*D} ->
// {B*S, D} reshape, which also makes the model batch-rebindable for serving.
Graph BuildTransformerEncoder(std::int64_t batch, std::int64_t seq, std::int64_t dim,
                              std::int64_t heads, std::int64_t ffn, int layers,
                              std::int64_t num_classes) {
  GraphBuilder b("transformer-encoder");
  int x = b.Input({batch, seq * dim});
  x = b.Reshape(x, {batch * seq, dim});
  for (int layer = 0; layer < layers; ++layer) {
    const std::string p = "enc" + std::to_string(layer) + ".";
    // Self-attention block: post-norm residual, as in the original encoder.
    int q = b.Dense(x, dim, false, p + "q");
    int k = b.Dense(x, dim, false, p + "k");
    int v = b.Dense(x, dim, false, p + "v");
    int att = b.MultiHeadAttention(q, k, v, heads, seq, p + "attn");
    att = b.Dense(att, dim, false, p + "proj");
    x = b.LayerNorm(b.Add(att, x), 1e-5f, p + "ln1");
    // Feed-forward block: D -> FFN (relu) -> D.
    int ff = b.Dense(x, ffn, true, p + "ffn1");
    ff = b.Dense(ff, dim, false, p + "ffn2");
    x = b.LayerNorm(b.Add(ff, x), 1e-5f, p + "ln2");
  }
  // Classifier head over the flattened sequence.
  x = b.Reshape(x, {batch, seq * dim});
  x = b.Dense(x, num_classes, false, "head");
  x = b.Softmax(x);
  return b.Finish({x});
}

}  // namespace neocpu
