// ResNet v1 (He et al., CVPR 2016) graph builders: depths 18/34 use basic blocks,
// 50/101/152 use bottleneck blocks.
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

// Basic residual block: 3x3 -> 3x3 with identity (or 1x1 projection) shortcut.
int BasicBlock(GraphBuilder& b, int in_id, std::int64_t channels, std::int64_t stride,
               bool project, const std::string& name) {
  int shortcut = in_id;
  if (project) {
    shortcut = b.Conv(in_id, channels, 1, stride, 0, false, name + ".proj");
    shortcut = b.BatchNorm(shortcut);
  }
  int x = b.ConvBnRelu(in_id, channels, 3, stride, 1, name + ".conv1");
  x = b.Conv(x, channels, 3, 1, 1, false, name + ".conv2");
  x = b.BatchNorm(x);
  x = b.Add(x, shortcut);
  return b.Relu(x);
}

// Bottleneck residual block: 1x1 reduce -> 3x3 -> 1x1 expand.
int BottleneckBlock(GraphBuilder& b, int in_id, std::int64_t channels, std::int64_t stride,
                    bool project, const std::string& name) {
  const std::int64_t mid = channels / 4;
  int shortcut = in_id;
  if (project) {
    shortcut = b.Conv(in_id, channels, 1, stride, 0, false, name + ".proj");
    shortcut = b.BatchNorm(shortcut);
  }
  int x = b.ConvBnRelu(in_id, mid, 1, 1, 0, name + ".conv1");
  x = b.ConvBnRelu(x, mid, 3, stride, 1, name + ".conv2");
  x = b.Conv(x, channels, 1, 1, 0, false, name + ".conv3");
  x = b.BatchNorm(x);
  x = b.Add(x, shortcut);
  return b.Relu(x);
}

}  // namespace

Graph BuildResNet(int depth, std::int64_t batch, std::int64_t image) {
  std::vector<int> units;
  bool bottleneck = true;
  switch (depth) {
    case 18:
      units = {2, 2, 2, 2};
      bottleneck = false;
      break;
    case 34:
      units = {3, 4, 6, 3};
      bottleneck = false;
      break;
    case 50:
      units = {3, 4, 6, 3};
      break;
    case 101:
      units = {3, 4, 23, 3};
      break;
    case 152:
      units = {3, 8, 36, 3};
      break;
    default:
      LOG(FATAL) << "unsupported ResNet depth " << depth;
  }
  const std::vector<std::int64_t> channels =
      bottleneck ? std::vector<std::int64_t>{256, 512, 1024, 2048}
                 : std::vector<std::int64_t>{64, 128, 256, 512};

  GraphBuilder b(StrFormat("resnet%d", depth), /*seed=*/100 + static_cast<unsigned>(depth));
  int x = b.Input({batch, 3, image, image});
  x = b.ConvBnRelu(x, 64, 7, 2, 3, "stem");
  x = b.MaxPool(x, 3, 2, 1);
  for (std::size_t stage = 0; stage < units.size(); ++stage) {
    for (int unit = 0; unit < units[stage]; ++unit) {
      const std::int64_t stride = (stage > 0 && unit == 0) ? 2 : 1;
      // A projection shortcut is only needed when the block changes channel count or
      // resolution: stage 1 of the basic-block variants starts at 64 channels already.
      const bool project = unit == 0 && (stage > 0 || bottleneck);
      const std::string name = StrFormat("stage%zu.unit%d", stage + 1, unit + 1);
      x = bottleneck ? BottleneckBlock(b, x, channels[stage], stride, project, name)
                     : BasicBlock(b, x, channels[stage], stride, project, name);
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 1000, false, "fc1000");
  x = b.Softmax(x);
  return b.Finish({x});
}

}  // namespace neocpu
