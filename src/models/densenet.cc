// DenseNet (Huang et al., CVPR 2017) graph builders: depths 121/161/169/201.
//
// Pre-activation composition (BN -> ReLU -> Conv) means the batch norms here cannot fold
// into their upstream convolutions; they lower to fused ScaleShift+ReLU nodes, which is
// exactly the mix of layout-tolerant ops between convolutions that the paper's layout
// propagation must flow through. The iterated channel concatenation exercises the
// sibling-constraint handling of the global search.
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

// One dense layer: BN-ReLU-Conv1x1(4g) -> BN-ReLU-Conv3x3(g); output concatenated by the
// caller.
int DenseLayer(GraphBuilder& b, int in_id, std::int64_t growth, const std::string& name) {
  int x = b.BatchNorm(in_id);
  x = b.Relu(x);
  x = b.Conv(x, 4 * growth, 1, 1, 0, false, name + ".conv1");
  x = b.BatchNorm(x);
  x = b.Relu(x);
  x = b.Conv(x, growth, 3, 1, 1, false, name + ".conv2");
  return x;
}

}  // namespace

Graph BuildDenseNet(int depth, std::int64_t batch, std::int64_t image) {
  std::vector<int> block_layers;
  std::int64_t growth = 32;
  std::int64_t init_features = 64;
  switch (depth) {
    case 121:
      block_layers = {6, 12, 24, 16};
      break;
    case 161:
      block_layers = {6, 12, 36, 24};
      growth = 48;
      init_features = 96;
      break;
    case 169:
      block_layers = {6, 12, 32, 32};
      break;
    case 201:
      block_layers = {6, 12, 48, 32};
      break;
    default:
      LOG(FATAL) << "unsupported DenseNet depth " << depth;
  }

  GraphBuilder b(StrFormat("densenet%d", depth), /*seed=*/300 + static_cast<unsigned>(depth));
  int x = b.Input({batch, 3, image, image});
  x = b.Conv(x, init_features, 7, 2, 3, false, "stem");
  x = b.BatchNorm(x);
  x = b.Relu(x);
  x = b.MaxPool(x, 3, 2, 1);

  std::int64_t num_features = init_features;
  for (std::size_t block = 0; block < block_layers.size(); ++block) {
    for (int layer = 0; layer < block_layers[block]; ++layer) {
      const int new_features =
          DenseLayer(b, x, growth, StrFormat("block%zu.layer%d", block + 1, layer + 1));
      x = b.Concat({x, new_features});
      num_features += growth;
    }
    if (block + 1 != block_layers.size()) {
      // Transition: BN-ReLU-Conv1x1(half) -> AvgPool2/2.
      x = b.BatchNorm(x);
      x = b.Relu(x);
      num_features /= 2;
      x = b.Conv(x, num_features, 1, 1, 0, false, StrFormat("transition%zu", block + 1));
      x = b.AvgPool(x, 2, 2, 0);
    }
  }
  x = b.BatchNorm(x);
  x = b.Relu(x);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 1000, false, "fc1000");
  x = b.Softmax(x);
  return b.Finish({x});
}

}  // namespace neocpu
