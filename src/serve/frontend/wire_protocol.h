// The neocpu wire protocol: length-prefixed binary frames over a byte stream.
//
// Every frame is a little-endian u32 body length followed by the body; docs/
// wire_protocol.md is the normative spec. Three frame types exist:
//
//   infer request  (client → server): magic, version, lane, dtype, dims, model name,
//                  raw tensor payload
//   infer result   (server → client): magic, version, dtype, dims, raw tensor payload
//   error          (server → client): magic, version, typed code, retry-after hint,
//                  human-readable message
//
// The decoder is written for hostile input: every read is bounds-checked, every length
// field is validated against the body before use, and malformed bytes come back as a
// typed WireError — never UB, never a crash. tests/property_fuzz_test.cc drives random
// and mutated byte streams through it under ASan.
#ifndef NEOCPU_SRC_SERVE_FRONTEND_WIRE_PROTOCOL_H_
#define NEOCPU_SRC_SERVE_FRONTEND_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/dynamic_batcher.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// "NCPU" read as a little-endian u32 (the bytes N,C,P,U appear in order on the wire).
inline constexpr std::uint32_t kWireMagic = 0x5550434Eu;
inline constexpr std::uint8_t kWireVersion = 1;
// Frames larger than this are rejected with kFrameTooLarge before the body is read.
inline constexpr std::size_t kWireMaxFrameBytes = 64u << 20;
inline constexpr std::size_t kWireMaxDims = 8;
inline constexpr std::size_t kWireMaxModelLen = 256;

enum class WireType : std::uint8_t {
  kInferRequest = 1,
  kInferResult = 2,
  kError = 3,
};

// Typed error replies. Enumerator values appear on the wire — append only.
enum class WireErrorCode : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kMalformedFrame = 3,   // truncated sections, bad lengths, dims/payload mismatch
  kFrameTooLarge = 4,
  kUnknownModel = 5,
  kShapeMismatch = 6,    // parsed fine but differs from the model's sample dims
  kOverloaded = 7,       // shed by bounded admission; honor retry_after_ms
  kShuttingDown = 8,
  kInternal = 9,
};

const char* WireErrorCodeName(WireErrorCode code);

struct WireError {
  WireErrorCode code = WireErrorCode::kNone;
  std::uint32_t retry_after_ms = 0;  // only meaningful for kOverloaded
  std::string message;

  bool ok() const { return code == WireErrorCode::kNone; }
};

struct WireRequest {
  std::string model;
  RequestLane lane = RequestLane::kLatency;
  // Raw payload in the model's input layout (NCHW for 4-D inputs); dtype and dims ride
  // in the frame header.
  Tensor input;
};

// A decoded server→client frame: exactly one of `result` / `error` is meaningful,
// selected by `type`.
struct WireResponse {
  WireType type = WireType::kError;
  Tensor result;
  WireError error;

  bool ok() const { return type == WireType::kInferResult; }
};

// Encoders produce the full frame including the u32 length prefix.
std::vector<std::uint8_t> EncodeRequestFrame(const WireRequest& request);
std::vector<std::uint8_t> EncodeResultFrame(const Tensor& result);
std::vector<std::uint8_t> EncodeErrorFrame(const WireError& error);

// Decoders parse a frame *body* (the bytes after the length prefix). They return
// kNone on success; any malformation yields a typed error and leaves `out`
// unspecified. Safe on arbitrary byte strings.
WireError DecodeRequestBody(const std::uint8_t* body, std::size_t size,
                            WireRequest* out);
WireError DecodeResponseBody(const std::uint8_t* body, std::size_t size,
                             WireResponse* out);

// Recoverable errors keep the connection open (the stream stays framed); the rest
// poison the stream and the server closes after replying.
bool WireErrorIsRecoverable(WireErrorCode code);

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_FRONTEND_WIRE_PROTOCOL_H_
