#include "src/serve/frontend/wire_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace neocpu {

namespace {

WireResponse TransportError(std::string message) {
  WireResponse response;
  response.type = WireType::kError;
  response.error.code = WireErrorCode::kInternal;
  response.error.message = std::move(message);
  return response;
}

}  // namespace

WireClient::~WireClient() { Close(); }

bool WireClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "inet_pton: bad address " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_error_ = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  // Latency-bound request/response traffic: don't let Nagle hold small frames.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool WireClient::SendRaw(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    last_error_ = "send on a closed client";
    return false;
  }
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a server that closed mid-write must surface as EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      last_error_ = std::string("send: ") + std::strerror(errno);
      Close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool WireClient::ReadExact(std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, out + got, size - got, 0);
    if (n == 0) {
      last_error_ = "peer closed the connection";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      last_error_ = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

WireResponse WireClient::ReceiveResponse() {
  if (fd_ < 0) {
    return TransportError("receive on a closed client");
  }
  std::uint8_t prefix[4];
  if (!ReadExact(prefix, sizeof(prefix))) {
    Close();
    return TransportError(last_error_);
  }
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (body_len == 0 || body_len > kWireMaxFrameBytes) {
    Close();
    return TransportError("response frame length out of range");
  }
  std::vector<std::uint8_t> body(body_len);
  if (!ReadExact(body.data(), body.size())) {
    Close();
    return TransportError(last_error_);
  }
  WireResponse response;
  const WireError err = DecodeResponseBody(body.data(), body.size(), &response);
  if (!err.ok()) {
    Close();
    last_error_ = std::string("undecodable response: ") + err.message;
    response.type = WireType::kError;
    response.error = err;
    response.error.code = WireErrorCode::kInternal;
    return response;
  }
  return response;
}

WireResponse WireClient::Call(const WireRequest& request) {
  const std::vector<std::uint8_t> frame = EncodeRequestFrame(request);
  if (!SendRaw(frame)) {
    return TransportError(last_error_);
  }
  return ReceiveResponse();
}

}  // namespace neocpu
