// Minimal blocking client for the neocpu wire protocol (wire_protocol.h).
//
// One WireClient owns one TCP connection. Call() is the happy path: encode the
// request, write the frame, block for exactly one response frame, decode it. The
// raw-byte hooks (SendRaw / ReceiveResponse) exist for the conformance tests and the
// load generators, which need to send deliberately broken frames or drive the socket
// from their own pacing loop.
//
// Not thread-safe: one client per thread (the load generators open one per worker).
#ifndef NEOCPU_SRC_SERVE_FRONTEND_WIRE_CLIENT_H_
#define NEOCPU_SRC_SERVE_FRONTEND_WIRE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/frontend/wire_protocol.h"

namespace neocpu {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  WireClient(WireClient&& other) noexcept
      : fd_(other.fd_), last_error_(std::move(other.last_error_)) {
    other.fd_ = -1;
  }
  WireClient& operator=(WireClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      last_error_ = std::move(other.last_error_);
      other.fd_ = -1;
    }
    return *this;
  }

  // Connects to host:port. Returns false (and sets last_error) on failure.
  bool Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();
  int fd() const { return fd_; }

  // Round-trips one inference. On transport failure returns a response with
  // type=kError, code=kInternal and closes the connection; protocol-level errors come
  // back as whatever typed error the server sent.
  WireResponse Call(const WireRequest& request);

  // Writes arbitrary bytes to the socket (pre-encoded frames, or garbage for the
  // conformance tests). Returns false on transport failure.
  bool SendRaw(const std::uint8_t* data, std::size_t size);
  bool SendRaw(const std::vector<std::uint8_t>& bytes) {
    return SendRaw(bytes.data(), bytes.size());
  }

  // Blocks for one length-prefixed response frame and decodes it. Transport failure
  // (peer closed, short read) yields kInternal and closes the connection.
  WireResponse ReceiveResponse();

  const std::string& last_error() const { return last_error_; }

 private:
  bool ReadExact(std::uint8_t* out, std::size_t size);

  int fd_ = -1;
  std::string last_error_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_FRONTEND_WIRE_CLIENT_H_
