#include "src/serve/frontend/wire_protocol.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"

namespace neocpu {

const char* WireErrorCodeName(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kNone:
      return "none";
    case WireErrorCode::kBadMagic:
      return "bad-magic";
    case WireErrorCode::kBadVersion:
      return "bad-version";
    case WireErrorCode::kMalformedFrame:
      return "malformed-frame";
    case WireErrorCode::kFrameTooLarge:
      return "frame-too-large";
    case WireErrorCode::kUnknownModel:
      return "unknown-model";
    case WireErrorCode::kShapeMismatch:
      return "shape-mismatch";
    case WireErrorCode::kOverloaded:
      return "overloaded";
    case WireErrorCode::kShuttingDown:
      return "shutting-down";
    case WireErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

bool WireErrorIsRecoverable(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kUnknownModel:
    case WireErrorCode::kShapeMismatch:
    case WireErrorCode::kOverloaded:
      return true;
    default:
      // Magic/version/length malformations mean the stream framing itself cannot be
      // trusted any further; shutdown means no more requests will be served anyway.
      return false;
  }
}

namespace {

// Explicit little-endian append/read: endian-independent and, more importantly for the
// decoder, never reads past `size` — every Read* checks before touching bytes.
void AppendU8(std::vector<std::uint8_t>* out, std::uint8_t v) { out->push_back(v); }

void AppendU16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t off = 0;

  std::size_t remaining() const { return size - off; }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) {
      return false;
    }
    *v = data[off++];
    return true;
  }
  bool ReadU16(std::uint16_t* v) {
    if (remaining() < 2) {
      return false;
    }
    *v = static_cast<std::uint16_t>(data[off] | (data[off + 1] << 8));
    off += 2;
    return true;
  }
  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data[off + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    off += 4;
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data[off + static_cast<std::size_t>(i)])
            << (8 * i);
    }
    off += 8;
    return true;
  }
};

WireError Malformed(const char* what) {
  WireError err;
  err.code = WireErrorCode::kMalformedFrame;
  err.message = what;
  return err;
}

// Shared preamble of every frame body: magic, version, expected type.
WireError DecodePreamble(ByteReader* reader, WireType expected_type) {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  if (!reader->ReadU32(&magic) || !reader->ReadU8(&version) || !reader->ReadU8(&type)) {
    return Malformed("frame shorter than the fixed preamble");
  }
  if (magic != kWireMagic) {
    WireError err;
    err.code = WireErrorCode::kBadMagic;
    err.message = "bad magic (expected 'NCPU')";
    return err;
  }
  if (version != kWireVersion) {
    WireError err;
    err.code = WireErrorCode::kBadVersion;
    err.message = "unsupported protocol version";
    return err;
  }
  if (type != static_cast<std::uint8_t>(expected_type)) {
    return Malformed("unexpected frame type");
  }
  WireError ok;
  return ok;
}

bool ValidDType(std::uint8_t code) {
  switch (static_cast<DType>(code)) {
    case DType::kF32:
    case DType::kS8:
    case DType::kU8:
    case DType::kS32:
      return true;
  }
  return false;
}

// Dims + payload tail shared by request and result bodies. On success builds the
// tensor (NCHW layout for 4-D values, flat otherwise) and copies the payload in.
WireError DecodeTensorTail(ByteReader* reader, std::uint8_t dtype_code,
                           std::uint16_t ndim, std::size_t model_len, Tensor* out) {
  if (!ValidDType(dtype_code)) {
    return Malformed("unknown dtype code");
  }
  if (ndim == 0 || ndim > kWireMaxDims) {
    return Malformed("ndim out of range");
  }
  const DType dtype = static_cast<DType>(dtype_code);
  std::vector<std::int64_t> dims(ndim);
  std::uint64_t elements = 1;
  for (std::uint16_t i = 0; i < ndim; ++i) {
    std::uint64_t dim = 0;
    if (!reader->ReadU64(&dim)) {
      return Malformed("truncated dims section");
    }
    // Any dim that alone exceeds the frame cap cannot be backed by a real payload, and
    // rejecting it here keeps the element product far from u64 overflow.
    if (dim == 0 || dim > kWireMaxFrameBytes) {
      return Malformed("dim out of range");
    }
    elements *= dim;
    if (elements > kWireMaxFrameBytes) {
      return Malformed("element count exceeds the frame cap");
    }
    dims[i] = static_cast<std::int64_t>(dim);
  }
  if (reader->remaining() < model_len) {
    return Malformed("truncated model-name section");
  }
  reader->off += model_len;  // caller re-reads the name; this validates the skip
  const std::size_t payload_bytes =
      static_cast<std::size_t>(elements) * ElemSizeBytes(dtype);
  if (reader->remaining() != payload_bytes) {
    return Malformed("payload size does not match dims x dtype");
  }
  Tensor tensor = Tensor::Empty(
      dims, ndim == 4 ? Layout::NCHW() : Layout::Flat(), dtype);
  std::memcpy(tensor.data(), reader->data + reader->off, payload_bytes);
  reader->off += payload_bytes;
  *out = std::move(tensor);
  WireError ok;
  return ok;
}

}  // namespace

std::vector<std::uint8_t> EncodeRequestFrame(const WireRequest& request) {
  NEOCPU_CHECK_LE(request.model.size(), kWireMaxModelLen) << "model name too long";
  NEOCPU_CHECK_GE(request.input.ndim(), 1) << "request tensor has no dims";
  NEOCPU_CHECK_LE(static_cast<std::size_t>(request.input.ndim()), kWireMaxDims);
  std::vector<std::uint8_t> frame;
  const std::size_t payload = request.input.SizeBytes();
  frame.reserve(4 + 12 + 8 * static_cast<std::size_t>(request.input.ndim()) +
                request.model.size() + payload);
  AppendU32(&frame, 0);  // length prefix, patched below
  AppendU32(&frame, kWireMagic);
  AppendU8(&frame, kWireVersion);
  AppendU8(&frame, static_cast<std::uint8_t>(WireType::kInferRequest));
  AppendU8(&frame, static_cast<std::uint8_t>(request.lane));
  AppendU8(&frame, static_cast<std::uint8_t>(request.input.dtype()));
  AppendU16(&frame, static_cast<std::uint16_t>(request.model.size()));
  AppendU16(&frame, static_cast<std::uint16_t>(request.input.ndim()));
  for (int i = 0; i < request.input.ndim(); ++i) {
    AppendU64(&frame, static_cast<std::uint64_t>(request.input.dim(i)));
  }
  frame.insert(frame.end(), request.model.begin(), request.model.end());
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(request.input.data());
  frame.insert(frame.end(), bytes, bytes + payload);
  const std::uint32_t body_len = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return frame;
}

std::vector<std::uint8_t> EncodeResultFrame(const Tensor& result) {
  NEOCPU_CHECK_GE(result.ndim(), 1) << "result tensor has no dims";
  NEOCPU_CHECK_LE(static_cast<std::size_t>(result.ndim()), kWireMaxDims);
  std::vector<std::uint8_t> frame;
  const std::size_t payload = result.SizeBytes();
  frame.reserve(4 + 12 + 8 * static_cast<std::size_t>(result.ndim()) + payload);
  AppendU32(&frame, 0);
  AppendU32(&frame, kWireMagic);
  AppendU8(&frame, kWireVersion);
  AppendU8(&frame, static_cast<std::uint8_t>(WireType::kInferResult));
  AppendU8(&frame, 0);  // reserved (the request's lane slot)
  AppendU8(&frame, static_cast<std::uint8_t>(result.dtype()));
  AppendU16(&frame, 0);  // reserved (the request's model_len slot)
  AppendU16(&frame, static_cast<std::uint16_t>(result.ndim()));
  for (int i = 0; i < result.ndim(); ++i) {
    AppendU64(&frame, static_cast<std::uint64_t>(result.dim(i)));
  }
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(result.data());
  frame.insert(frame.end(), bytes, bytes + payload);
  const std::uint32_t body_len = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return frame;
}

std::vector<std::uint8_t> EncodeErrorFrame(const WireError& error) {
  std::vector<std::uint8_t> frame;
  const std::size_t msg_len = std::min<std::size_t>(error.message.size(), 1024);
  frame.reserve(4 + 14 + msg_len);
  AppendU32(&frame, 0);
  AppendU32(&frame, kWireMagic);
  AppendU8(&frame, kWireVersion);
  AppendU8(&frame, static_cast<std::uint8_t>(WireType::kError));
  AppendU16(&frame, static_cast<std::uint16_t>(error.code));
  AppendU32(&frame, error.retry_after_ms);
  AppendU16(&frame, static_cast<std::uint16_t>(msg_len));
  frame.insert(frame.end(), error.message.begin(),
               error.message.begin() + static_cast<std::ptrdiff_t>(msg_len));
  const std::uint32_t body_len = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return frame;
}

WireError DecodeRequestBody(const std::uint8_t* body, std::size_t size,
                            WireRequest* out) {
  ByteReader reader{body, size};
  WireError err = DecodePreamble(&reader, WireType::kInferRequest);
  if (!err.ok()) {
    return err;
  }
  std::uint8_t lane = 0;
  std::uint8_t dtype = 0;
  std::uint16_t model_len = 0;
  std::uint16_t ndim = 0;
  if (!reader.ReadU8(&lane) || !reader.ReadU8(&dtype) || !reader.ReadU16(&model_len) ||
      !reader.ReadU16(&ndim)) {
    return Malformed("frame shorter than the request header");
  }
  if (lane >= kNumRequestLanes) {
    return Malformed("unknown priority lane");
  }
  if (model_len == 0 || model_len > kWireMaxModelLen) {
    return Malformed("model-name length out of range");
  }
  const std::size_t name_off = reader.off + 8u * ndim;  // validated in DecodeTensorTail
  err = DecodeTensorTail(&reader, dtype, ndim, model_len, &out->input);
  if (!err.ok()) {
    return err;
  }
  out->model.assign(reinterpret_cast<const char*>(body + name_off), model_len);
  out->lane = static_cast<RequestLane>(lane);
  WireError ok;
  return ok;
}

WireError DecodeResponseBody(const std::uint8_t* body, std::size_t size,
                             WireResponse* out) {
  // Peek the type (offset 5) by attempting the error preamble first.
  ByteReader reader{body, size};
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  if (!reader.ReadU32(&magic) || !reader.ReadU8(&version) || !reader.ReadU8(&type)) {
    return Malformed("frame shorter than the fixed preamble");
  }
  if (magic != kWireMagic) {
    WireError err;
    err.code = WireErrorCode::kBadMagic;
    err.message = "bad magic (expected 'NCPU')";
    return err;
  }
  if (version != kWireVersion) {
    WireError err;
    err.code = WireErrorCode::kBadVersion;
    err.message = "unsupported protocol version";
    return err;
  }
  if (type == static_cast<std::uint8_t>(WireType::kError)) {
    std::uint16_t code = 0;
    std::uint32_t retry = 0;
    std::uint16_t msg_len = 0;
    if (!reader.ReadU16(&code) || !reader.ReadU32(&retry) || !reader.ReadU16(&msg_len)) {
      return Malformed("frame shorter than the error header");
    }
    if (reader.remaining() != msg_len) {
      return Malformed("error message length mismatch");
    }
    out->type = WireType::kError;
    out->error.code = static_cast<WireErrorCode>(code);
    out->error.retry_after_ms = retry;
    out->error.message.assign(reinterpret_cast<const char*>(body + reader.off), msg_len);
    WireError ok;
    return ok;
  }
  if (type != static_cast<std::uint8_t>(WireType::kInferResult)) {
    return Malformed("unexpected frame type");
  }
  std::uint8_t reserved8 = 0;
  std::uint8_t dtype = 0;
  std::uint16_t reserved16 = 0;
  std::uint16_t ndim = 0;
  if (!reader.ReadU8(&reserved8) || !reader.ReadU8(&dtype) ||
      !reader.ReadU16(&reserved16) || !reader.ReadU16(&ndim)) {
    return Malformed("frame shorter than the result header");
  }
  WireError err = DecodeTensorTail(&reader, dtype, ndim, 0, &out->result);
  if (!err.ok()) {
    return err;
  }
  out->type = WireType::kInferResult;
  WireError ok;
  return ok;
}

}  // namespace neocpu
