#include "src/serve/frontend/frontend_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace neocpu {

namespace {

std::uint32_t RetryAfterToWire(double retry_after_ms) {
  if (retry_after_ms <= 0.0) {
    return 0;
  }
  // Round up: a client that honors the hint exactly should land after the window.
  return static_cast<std::uint32_t>(retry_after_ms + 0.999);
}

WireError ErrorFor(const SubmitTicket& ticket, const std::string& model) {
  WireError err;
  switch (ticket.status) {
    case SubmitStatus::kOk:
      break;
    case SubmitStatus::kUnknownModel:
      err.code = WireErrorCode::kUnknownModel;
      err.message = "unknown model '" + model + "'";
      break;
    case SubmitStatus::kShapeMismatch:
      err.code = WireErrorCode::kShapeMismatch;
      err.message = "input dims do not match the model's sample dims";
      break;
    case SubmitStatus::kShedQueueFull:
      err.code = WireErrorCode::kOverloaded;
      err.retry_after_ms = RetryAfterToWire(ticket.retry_after_ms);
      err.message = "shed: admission queue full";
      break;
    case SubmitStatus::kShedArenaBytes:
      err.code = WireErrorCode::kOverloaded;
      err.retry_after_ms = RetryAfterToWire(ticket.retry_after_ms);
      err.message = "shed: in-flight arena byte cap";
      break;
    case SubmitStatus::kShuttingDown:
      err.code = WireErrorCode::kShuttingDown;
      err.message = "server is shutting down";
      break;
  }
  return err;
}

std::string HttpResponse(int status, const char* reason, const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

FrontendServer::FrontendServer(InferenceServer* server, FrontendOptions options)
    : server_(server), options_(std::move(options)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  frames_metric_ = registry.GetCounter("neocpu_frontend_frames_total",
                                       "wire frames answered with a result");
  errors_metric_ = registry.GetCounter("neocpu_frontend_errors_total",
                                       "wire frames answered with a typed error");
}

FrontendServer::~FrontendServer() { Stop(); }

bool FrontendServer::Start() {
  if (listen_fd_ >= 0) {
    return true;
  }
  stopping_.store(false, std::memory_order_release);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "inet_pton: bad bind address " + options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    last_error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void FrontendServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // shutdown (not close) reliably wakes a blocked accept().
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake every connection handler blocked in recv: they see EOF, answer what they
  // already read (a typed shutting-down error for fresh frames) and exit.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const auto& [id, fd] : live_fds_) {
      (void)id;
      ::shutdown(fd, SHUT_RD);
    }
  }
  for (;;) {
    std::map<std::uint64_t, std::thread> handlers;
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      handlers.swap(handlers_);
      finished.swap(finished_);
    }
    if (handlers.empty() && finished.empty()) {
      break;
    }
    for (auto& [id, thread] : handlers) {
      (void)id;
      if (thread.joinable()) {
        thread.join();
      }
    }
    for (auto& thread : finished) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
}

FrontendStats FrontendServer::Stats() const {
  FrontendStats stats;
  stats.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  stats.frames_ok = frames_ok_.load(std::memory_order_relaxed);
  stats.frames_error = frames_error_.load(std::memory_order_relaxed);
  stats.http_requests = http_requests_.load(std::memory_order_relaxed);
  return stats;
}

void FrontendServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener shut down (Stop) or unrecoverable
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (open_connections_.load(std::memory_order_relaxed) >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      WireError err;
      err.code = WireErrorCode::kOverloaded;
      err.message = "connection limit reached";
      const std::vector<std::uint8_t> frame = EncodeErrorFrame(err);
      SendAll(fd, frame.data(), frame.size());
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mutex_);
    const std::uint64_t id = next_conn_id_++;
    live_fds_[id] = fd;
    handlers_[id] = std::thread([this, id, fd] {
      HandleConnection(fd);
      ::close(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> inner(conn_mutex_);
      live_fds_.erase(id);
      auto it = handlers_.find(id);
      if (it != handlers_.end()) {
        // A thread cannot join itself; park the handle for Stop / later accepts.
        finished_.push_back(std::move(it->second));
        handlers_.erase(it);
      }
    });
    // Reap handlers that already finished so long-lived servers don't accumulate
    // joinable thread handles.
    std::vector<std::thread> done;
    done.swap(finished_);
    for (auto& thread : done) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
}

void FrontendServer::HandleConnection(int fd) {
  char peek[4] = {0, 0, 0, 0};
  const ssize_t n = ::recv(fd, peek, sizeof(peek), MSG_PEEK);
  if (n <= 0) {
    return;
  }
  if (n == 4 && std::memcmp(peek, "GET ", 4) == 0) {
    HandleHttp(fd);
    return;
  }
  HandleBinary(fd);
}

bool FrontendServer::SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrontendServer::ReadExact(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n == 0) {
      return false;  // peer closed, or Stop() shut the read side down
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrontendServer::SendError(int fd, const WireError& error) {
  frames_error_.fetch_add(1, std::memory_order_relaxed);
  errors_metric_->Increment();
  const std::vector<std::uint8_t> frame = EncodeErrorFrame(error);
  if (!SendAll(fd, frame.data(), frame.size())) {
    return false;
  }
  return WireErrorIsRecoverable(error.code);
}

void FrontendServer::HandleBinary(int fd) {
  std::vector<std::uint8_t> body;
  for (;;) {
    std::uint8_t prefix[4];
    if (!ReadExact(fd, prefix, sizeof(prefix))) {
      return;  // clean EOF between frames, or transport failure
    }
    std::uint32_t body_len = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    }
    if (body_len == 0) {
      WireError err;
      err.code = WireErrorCode::kMalformedFrame;
      err.message = "zero-length frame body";
      SendError(fd, err);
      return;
    }
    if (body_len > options_.max_frame_bytes) {
      // Never read the oversized body — reply and drop the connection.
      WireError err;
      err.code = WireErrorCode::kFrameTooLarge;
      err.message = "frame body exceeds " + std::to_string(options_.max_frame_bytes) +
                    " bytes";
      SendError(fd, err);
      return;
    }
    body.resize(body_len);
    if (!ReadExact(fd, body.data(), body.size())) {
      return;  // truncated frame: peer vanished mid-body; nothing sane to reply to
    }
    WireRequest request;
    const WireError parse = DecodeRequestBody(body.data(), body.size(), &request);
    if (!parse.ok()) {
      if (!SendError(fd, parse)) {
        return;
      }
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      WireError err;
      err.code = WireErrorCode::kShuttingDown;
      err.message = "front end is shutting down";
      SendError(fd, err);
      return;
    }
    SubmitTicket ticket = server_->TrySubmit(request.model, std::move(request.input),
                                             SubmitOptions{request.lane});
    if (!ticket.ok()) {
      if (!SendError(fd, ErrorFor(ticket, request.model))) {
        return;
      }
      continue;
    }
    std::vector<std::uint8_t> reply;
    try {
      const Tensor result = ticket.result.get();
      reply = EncodeResultFrame(result);
    } catch (const std::exception& e) {
      WireError err;
      err.code = WireErrorCode::kInternal;
      err.message = std::string("execution failed: ") + e.what();
      if (!SendError(fd, err)) {
        return;
      }
      continue;
    }
    frames_ok_.fetch_add(1, std::memory_order_relaxed);
    frames_metric_->Increment();
    if (!SendAll(fd, reply.data(), reply.size())) {
      return;
    }
  }
}

void FrontendServer::HandleHttp(int fd) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  // Read until the end of the request head; bodies are not supported (GET only).
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t path_begin = head.find(' ');
  const std::size_t path_end =
      path_begin == std::string::npos ? std::string::npos
                                      : head.find(' ', path_begin + 1);
  std::string path;
  if (path_end != std::string::npos) {
    path = head.substr(path_begin + 1, path_end - path_begin - 1);
  }
  std::string response;
  if (path == "/healthz") {
    response = HttpResponse(200, "OK", "text/plain", "ok\n");
  } else if (path == "/metrics") {
    response = HttpResponse(200, "OK", "text/plain; version=0.0.4",
                            MetricsExport(MetricsFormat::kPrometheus));
  } else if (path == "/metrics.json") {
    response =
        HttpResponse(200, "OK", "application/json", MetricsExport(MetricsFormat::kJson));
  } else if (path == "/stats") {
    response =
        HttpResponse(200, "OK", "application/json", server_->Stats().ToJson() + "\n");
  } else if (path == "/trace") {
    // Chrome-trace export of the server's TraceRecorder (load into chrome://tracing
    // or Perfetto). Only present when the server was built with a tracer.
    TraceRecorder* tracer = server_->tracer();
    if (tracer == nullptr) {
      response = HttpResponse(
          404, "Not Found", "text/plain",
          "tracing is off: construct the server with ServerOptions::tracer\n");
    } else {
      response = HttpResponse(200, "OK", "application/json", tracer->ToJson() + "\n");
    }
  } else {
    response = HttpResponse(
        404, "Not Found", "text/plain",
        "unknown path; try /healthz /metrics /metrics.json /stats /trace\n");
  }
  SendAll(fd, reinterpret_cast<const std::uint8_t*>(response.data()), response.size());
}

}  // namespace neocpu
