// Socket-level front end over InferenceServer.
//
// One listener thread accepts TCP connections; each connection gets its own handler
// thread. The first bytes of a connection select the dialect:
//
//   "GET "            → minimal HTTP/1.1: /healthz, /metrics (Prometheus),
//                       /metrics.json, /stats (ServerStats JSON), /trace
//                       (chrome-trace JSON when the server has a TraceRecorder).
//                       One response, Connection: close.
//   anything else     → the length-prefixed binary protocol (wire_protocol.h), a
//                       stream of infer-request frames answered in order.
//
// Error discipline on the binary path: recoverable conditions (unknown model, shape
// mismatch, overload shed) get a typed error reply and the connection stays open —
// the stream framing is still trustworthy. Malformed framing (bad magic/version,
// length out of range, undecodable body) gets a typed reply and then the connection
// is closed, because resynchronizing an untrusted stream is guesswork. Overload
// replies carry the admission controller's retry-after hint.
//
// Shutdown drains cleanly: the listener stops, every open connection's read side is
// shut down, handler threads answer their in-flight requests (or reply
// shutting-down) and exit, and only then does Stop() return.
#ifndef NEOCPU_SRC_SERVE_FRONTEND_FRONTEND_SERVER_H_
#define NEOCPU_SRC_SERVE_FRONTEND_FRONTEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/frontend/wire_protocol.h"
#include "src/serve/inference_server.h"

namespace neocpu {

class Counter;

struct FrontendOptions {
  // 0 = ephemeral (read the bound port back with port(); tests and benches do this).
  int port = 0;
  std::string bind_address = "127.0.0.1";
  int backlog = 64;
  // Connections beyond this are accepted and immediately closed after a typed
  // overloaded reply, so a connection flood cannot exhaust handler threads.
  int max_connections = 256;
  std::size_t max_frame_bytes = kWireMaxFrameBytes;
};

struct FrontendStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_error = 0;  // typed error replies sent (any code)
  std::uint64_t http_requests = 0;
};

class FrontendServer {
 public:
  // `server` is borrowed and must outlive the frontend. Call Start() to listen.
  FrontendServer(InferenceServer* server, FrontendOptions options = {});
  ~FrontendServer();

  FrontendServer(const FrontendServer&) = delete;
  FrontendServer& operator=(const FrontendServer&) = delete;

  // Binds, listens, spawns the accept loop. Returns false (with the reason in
  // last_error()) if the socket cannot be bound.
  bool Start();
  // Stops accepting, unblocks every connection handler, joins all threads.
  // Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  // The bound port (resolves port=0 to the kernel-assigned ephemeral port).
  int port() const { return port_; }
  const std::string& last_error() const { return last_error_; }

  FrontendStats Stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void HandleBinary(int fd);
  void HandleHttp(int fd);
  // Sends a typed error frame; returns false when the connection should close.
  bool SendError(int fd, const WireError& error);
  bool SendAll(int fd, const std::uint8_t* data, std::size_t size);
  bool ReadExact(int fd, std::uint8_t* out, std::size_t size);

  InferenceServer* server_;
  FrontendOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string last_error_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mutex_;
  std::map<std::uint64_t, int> live_fds_;          // open sockets, for Stop()'s SHUT_RD
  std::map<std::uint64_t, std::thread> handlers_;  // joined on Stop / reaped lazily
  std::vector<std::thread> finished_;              // handlers done but not yet joined
  std::uint64_t next_conn_id_ = 0;
  std::atomic<int> open_connections_{0};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_ok_{0};
  std::atomic<std::uint64_t> frames_error_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  Counter* frames_metric_ = nullptr;
  Counter* errors_metric_ = nullptr;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_FRONTEND_FRONTEND_SERVER_H_
