// Compiled-model registry for the inference server.
//
// Each entry owns a compiled model plus lazily materialized batch-size variants. A
// variant starts life as a RebindBatch derivative — the optimized structure, chosen
// schedules, and pre-transformed weight payloads of the base model reused at the new
// batch, which costs microseconds but executes schedules *tuned for the base batch*.
// VariantFor therefore serves the rebound variant immediately and (when the model
// carries its tuning state) kicks off a background re-tune for that exact batch size;
// once RetuneForBatch finishes, the per-batch-tuned variant is hot-swapped in and all
// subsequent batches of that size execute schedules searched for their own batch.
// Variants are handed out as shared_ptr so a hot swap never invalidates an executor a
// pool worker is mid-flight on.
//
// Warm start: RegisterFromFile loads a module produced by SaveModule
// (core/serialization), so a server restart skips compilation and tuning entirely —
// including the per-batch tunings, which ride along inside the module's TuningCache
// (a post-restart "re-tune" of a previously seen batch is a pure cache lookup).
#ifndef NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_
#define NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/executor.h"
#include "src/obs/node_profiler.h"

namespace neocpu {

class TraceRecorder;

// Concurrency budget shared by every entry of one registry: caps how many background
// re-tunes run simultaneously so a batch-size churn storm (many models x many new
// batch sizes at once) cannot fan out into unbounded tuning threads. A re-tune that
// finds the budget exhausted is DEFERRED, not queued: the slot stays untuned and the
// next request for that batch size retries — re-tunes are traffic-driven, so hot batch
// sizes win the budget.
class RetuneBudget {
 public:
  explicit RetuneBudget(int max_concurrent) : max_concurrent_(max_concurrent) {}

  bool TryAcquire();
  void Release();

  int in_flight() const;
  int peak_in_flight() const;
  std::uint64_t deferred() const;

 private:
  mutable std::mutex mutex_;
  const int max_concurrent_;
  int in_flight_ = 0;
  int peak_ = 0;
  std::uint64_t deferred_ = 0;
};

// How a ModelEntry runs background per-batch re-tunes.
struct RetuneOptions {
  bool enabled = true;
  // Workers for the re-tune's thread engine (measured-mode tuning benefits; analytic
  // mode ignores it). 1 keeps the re-tune on a single spare core.
  int num_workers = 1;
  // Core the re-tune engine starts binding at — point it at a spare partition so
  // re-tunes don't steal cycles from serving executors. Binding only happens with
  // bind_threads; unpinned re-tunes timeshare politely.
  int core_offset = 0;
  bool bind_threads = false;
  // Explicit cpu ids for the re-tune engine — the measured-mode tuning partition
  // (src/runtime/partition.h PlanServingAndTuning). Non-empty overrides num_workers /
  // core_offset: the engine gets exactly these cpus, pinned when bind_threads.
  std::vector<int> cpus;
  // Run re-tunes in MEASURED cost mode (real-hardware kernel timings) instead of the
  // model's compile-time mode. Winners land under kMeasured workload keys in the
  // shared TuningCache — the promotion the dedicated tuning partition exists for.
  // Only sane together with a dedicated `cpus` slice; measured timings taken on cores
  // serving traffic would be noise and would perturb serving tails.
  bool measured = false;
  // Registry-wide cap on concurrent re-tunes (0 = unlimited). ModelRegistry
  // materializes `budget` from this when it configures its entries; standalone
  // ModelEntry users may share a budget across entries themselves.
  int max_concurrent_retunes = 0;
  std::shared_ptr<RetuneBudget> budget;
};

// Per-entry tuning observability (see also TuningCache::Stats for cache traffic).
struct EntryTuningStats {
  std::uint64_t retunes_started = 0;
  std::uint64_t retunes_completed = 0;
  std::uint64_t retunes_failed = 0;
  std::uint64_t retunes_deferred = 0;  // skipped because the registry budget was spent
  // Completed MEASURED-mode re-tunes: real-hardware winners promoted into the shared
  // cache by the tuning partition.
  std::uint64_t measured_retunes_promoted = 0;
  TuningCacheStats cache;  // zeroed when the model carries no tuning cache
};

class ModelEntry {
 public:
  // `model` must be single-input single-output (the serving batcher merges along the
  // one input). Checked fatally.
  ModelEntry(std::string name, CompiledModel model);
  ~ModelEntry();  // joins in-flight re-tune threads

  const std::string& name() const { return name_; }
  // Per-request input dims: the registered graph's input dims with leading dim 1.
  const std::vector<std::int64_t>& sample_dims() const { return sample_dims_; }
  // False when the graph cannot be batch-rebound (e.g. SSD's detection head); such
  // models always run one request at a time.
  bool batchable() const { return batchable_; }
  // Planned arena footprint of the batch-1 variant (CompileStats::arena_bytes): the
  // per-request unit the admission controller charges against its arena-bytes cap.
  std::size_t arena_bytes_per_sample() const { return arena_bytes_per_sample_; }

  struct Variant {
    std::unique_ptr<CompiledModel> model;
    std::unique_ptr<Executor> executor;  // engine-less; pass one per Run call

    // Per-NUMA-node weight replica: the same executable graph with every constant
    // payload deep-cloned by a thread pinned to the replica's node, so first-touch
    // places the weight pages node-locally. Structure, schedules, and the memory plan
    // are shared with the base — only the read-only payload bytes are duplicated.
    struct Replica {
      int node = -1;
      Graph graph;
      std::unique_ptr<Executor> executor;
    };
    // Built once, off the serving path, then read-only; `replicas_ready` publishes
    // the list so in-flight Runs racing the build simply use the base executor.
    // Mutable because variants circulate as shared_ptr<const Variant> and the build
    // happens after publication (guarded by the owning entry's mutex).
    mutable std::vector<std::unique_ptr<Replica>> replicas;
    mutable std::atomic<bool> replicas_ready{false};

    // The executor a partition homed on `node` should Run: the node's replica when
    // one exists, else the base. Zero allocations; safe concurrently with the build.
    Executor* ExecutorFor(int node) const;
  };
  using VariantPtr = std::shared_ptr<const Variant>;

  // Returns the variant executing at batch size `batch`, materializing (and caching) a
  // rebound variant on first use and scheduling its background re-tune. The returned
  // pointer keeps the variant alive across hot swaps; callers hold it for the duration
  // of a Run. Thread-safe. Dies if batch > 1 on a non-batchable model.
  VariantPtr VariantFor(std::int64_t batch);

  void ConfigureRetune(const RetuneOptions& options);

  // Replicates read-only constant weights onto each listed NUMA node: every current
  // and future variant of this entry grows one node-local weight replica per node
  // (ExecutorFor picks it by the executing partition's home node). Replication runs
  // here and at variant materialization / re-tune hot-swap — never on the serving
  // path — so steady-state execution stays zero-alloc. Nodes absent from the host
  // topology still replicate (tests force multi-node layouts on one-node hosts);
  // their builder threads just don't pin.
  void ConfigureReplicas(const std::vector<int>& nodes);

  // Per-node profiling across every batch variant of this entry. `sample_rate` N times
  // one Run in N per variant (0 disables). Takes effect immediately on live variants —
  // executors mid-flight pick the profiler up on their next Run — and automatically
  // covers variants materialized or hot-swapped later. Profilers for replaced variants
  // are retained, so ProfileSnapshot() aggregates the entry's whole profiled history.
  void ConfigureProfiling(std::uint32_t sample_rate);
  // Chrome-trace spans for every node execution (obs/trace). `tracer` is borrowed and
  // must outlive the entry or be detached with nullptr first.
  void ConfigureTracing(TraceRecorder* tracer);
  // Merged per-node profile over all variants (empty when profiling is off).
  NodeProfileSnapshot ProfileSnapshot() const;

  // Blocks until every re-tune scheduled so far has finished (tests; graceful drain).
  void WaitForRetunes();

  EntryTuningStats TuningStats() const;
  // The model's shared schedule cache; null when registered without tuning state.
  std::shared_ptr<TuningCache> tuning_cache() const;

 private:
  struct Slot {
    VariantPtr current;
    bool tuned = false;            // current executes schedules searched for its batch
    bool retune_inflight = false;  // a background re-tune for this batch is running
  };

  static VariantPtr MakeVariant(CompiledModel model);
  // Builds one node-local weight replica per configured node into `variant`. Called
  // with mutex_ held, before (or as) the variant enters service; no-op when already
  // replicated or no nodes are configured.
  void BuildReplicasLocked(const Variant& variant);
  // Runs in a background thread: re-tunes `batch` and hot-swaps the slot on success.
  void RetuneSlot(std::int64_t batch);
  // Attaches a fresh profiler (when profiling is on) and the tracer to a variant's
  // executor. Call with mutex_ held, on every variant entering service.
  void AttachObservabilityLocked(const Variant& variant);

  std::string name_;
  std::vector<std::int64_t> sample_dims_;
  bool batchable_ = false;
  std::size_t arena_bytes_per_sample_ = 0;

  mutable std::mutex mutex_;
  std::map<std::int64_t, Slot> variants_;
  RetuneOptions retune_options_;
  std::vector<int> replica_nodes_;  // NUMA nodes to replicate weights onto
  std::uint32_t profile_sample_rate_ = 0;  // 0 = profiling off; guarded by mutex_
  TraceRecorder* tracer_ = nullptr;        // borrowed; guarded by mutex_
  // One profiler per profiled variant, kept past hot swaps so snapshots cover history.
  std::vector<std::unique_ptr<NodeProfiler>> profilers_;
  std::vector<std::thread> retune_threads_;
  std::uint64_t retunes_inflight_ = 0;  // guarded by mutex_; gates thread reaping
  std::atomic<std::uint64_t> retunes_started_{0};
  std::atomic<std::uint64_t> retunes_completed_{0};
  std::atomic<std::uint64_t> retunes_failed_{0};
  std::atomic<std::uint64_t> retunes_deferred_{0};
  std::atomic<std::uint64_t> measured_promoted_{0};
};

class ModelRegistry {
 public:
  // Registers under `name`; replaces any existing entry with that name. Returns the
  // entry (stable address for the registry's lifetime).
  //
  // Cache sharing: every registered model that carries tuning state is re-pointed at
  // ONE registry-wide TuningCache (its own cache's entries are merged in first), so
  // identical conv workloads across models are searched once — model B's background
  // re-tune of a batch model A already tuned is a pure cache lookup.
  ModelEntry* Register(std::string name, CompiledModel model);

  // The registry-wide schedule cache shared by all entries with tuning state.
  std::shared_ptr<TuningCache> shared_tuning_cache() const { return shared_cache_; }

  // Warm start from a serialized module (SaveModule artifact). Returns nullptr on I/O
  // failure.
  ModelEntry* RegisterFromFile(std::string name, const std::string& path);

  // Nullptr when unknown.
  ModelEntry* Find(const std::string& name) const;

  std::vector<std::string> ModelNames() const;

  // Applied to every current and future entry (the server points re-tunes at a spare
  // partition once it knows its own core plan).
  void ConfigureRetune(const RetuneOptions& options);

  // Replicates every entry's constant weights onto each listed NUMA node (see
  // ModelEntry::ConfigureReplicas). Applied to current and future entries; the server
  // calls this with its serving partitions' home nodes when the plan spans nodes.
  void ConfigureReplicas(const std::vector<int>& nodes);

  // Per-node profiling / tracing applied to every current and future entry (see
  // ModelEntry::ConfigureProfiling / ConfigureTracing).
  void ConfigureProfiling(std::uint32_t sample_rate);
  void ConfigureTracing(TraceRecorder* tracer);

  // Sum of per-entry tuning stats across all registered models.
  EntryTuningStats AggregateTuningStats() const;

  // Blocks until every background re-tune across all entries has finished.
  void WaitForRetunes();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ModelEntry>> entries_;
  // One schedule cache for the whole registry (created eagerly; immutable pointer, so
  // it is safe to hand out without the mutex).
  const std::shared_ptr<TuningCache> shared_cache_ = std::make_shared<TuningCache>();
  RetuneOptions retune_options_;
  std::vector<int> replica_nodes_;
  std::uint32_t profile_sample_rate_ = 0;
  TraceRecorder* tracer_ = nullptr;
  // Entries displaced by a same-name Register. Kept alive for the registry's lifetime:
  // in-flight requests (and pool workers mid-batch) hold raw ModelEntry pointers, so
  // destroying a displaced entry eagerly would be a use-after-free. Re-registration is
  // rare (model rollout), so the leak-until-shutdown is bounded and deliberate.
  std::vector<std::unique_ptr<ModelEntry>> retired_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_
