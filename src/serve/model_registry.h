// Compiled-model registry for the inference server.
//
// Each entry owns a compiled model plus lazily materialized batch-size variants. A
// variant is NOT a recompilation: RebindBatch reuses the optimized structure, chosen
// schedules, and pre-transformed weight payloads, so materializing the batch-8 variant
// of a model costs microseconds and a few hundred node headers. Every variant carries
// one long-lived Executor shared by the whole executor pool (Executor::Run is const and
// stateless; workers pass their own ThreadEngine per call).
//
// Warm start: RegisterFromFile loads a module produced by SaveModule
// (core/serialization), so a server restart skips compilation and tuning entirely.
#ifndef NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_
#define NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/executor.h"

namespace neocpu {

class ModelEntry {
 public:
  // `model` must be single-input single-output (the serving batcher merges along the
  // one input). Checked fatally.
  ModelEntry(std::string name, CompiledModel model);

  const std::string& name() const { return name_; }
  // Per-request input dims: the registered graph's input dims with leading dim 1.
  const std::vector<std::int64_t>& sample_dims() const { return sample_dims_; }
  // False when the graph cannot be batch-rebound (e.g. SSD's detection head); such
  // models always run one request at a time.
  bool batchable() const { return batchable_; }

  struct Variant {
    std::unique_ptr<CompiledModel> model;
    std::unique_ptr<Executor> executor;  // engine-less; pass one per Run call
  };

  // Returns the variant executing at batch size `batch`, materializing and caching it
  // on first use. Thread-safe. Dies if batch > 1 on a non-batchable model.
  const Variant& VariantFor(std::int64_t batch);

 private:
  std::string name_;
  std::vector<std::int64_t> sample_dims_;
  bool batchable_ = false;

  std::mutex mutex_;
  std::map<std::int64_t, Variant> variants_;
};

class ModelRegistry {
 public:
  // Registers under `name`; replaces any existing entry with that name. Returns the
  // entry (stable address for the registry's lifetime).
  ModelEntry* Register(std::string name, CompiledModel model);

  // Warm start from a serialized module (SaveModule artifact). Returns nullptr on I/O
  // failure.
  ModelEntry* RegisterFromFile(std::string name, const std::string& path);

  // Nullptr when unknown.
  ModelEntry* Find(const std::string& name);

  std::vector<std::string> ModelNames() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ModelEntry>> entries_;
  // Entries displaced by a same-name Register. Kept alive for the registry's lifetime:
  // in-flight requests (and pool workers mid-batch) hold raw ModelEntry pointers, so
  // destroying a displaced entry eagerly would be a use-after-free. Re-registration is
  // rare (model rollout), so the leak-until-shutdown is bounded and deliberate.
  std::vector<std::unique_ptr<ModelEntry>> retired_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_MODEL_REGISTRY_H_
