// Serving-side observability: per-request latency distribution and batching counters.
//
// The recorder keeps every sample (serving tests and benches run bounded request
// counts); Snapshot() computes nearest-rank percentiles on demand. All entry points are
// thread-safe — executor-pool workers record concurrently.
#ifndef NEOCPU_SRC_SERVE_SERVING_STATS_H_
#define NEOCPU_SRC_SERVE_SERVING_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/tuning/tuning_cache.h"

namespace neocpu {

struct LatencySnapshot {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;  // the overload-gated tail (needs thousands of samples to bite)
  double max_ms = 0.0;
};

// Bounded memory: once kMaxSamples is reached, reservoir sampling keeps a uniform
// subset of the full stream, so percentiles stay representative in a server that runs
// for days while memory stays flat. `count` still reports every recorded request.
class LatencyRecorder {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 16;

  void Record(double millis);
  LatencySnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;   // total recorded, including displaced samples
  std::uint64_t rng_state_ = 0x243f6a8885a308d3ull;  // splitmix64 state for the reservoir
};

// Per-model slice of a server's stats: the tuning counters of one registry entry plus,
// when profiling is enabled, the entry's merged node-profile roll-up.
struct ModelServeStats {
  std::string name;
  std::uint64_t retunes_started = 0;
  std::uint64_t retunes_completed = 0;
  std::uint64_t retunes_failed = 0;
  std::uint64_t retunes_deferred = 0;
  std::uint64_t profiled_runs = 0;      // Runs the per-node profiler actually timed
  double profile_ms_per_run = 0.0;      // mean profiled wall time per Run
};

// Aggregate serving counters plus the request-latency distribution (submit → result).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t batch_runs = 0;      // executor invocations (one per formed batch)
  std::uint64_t batched_samples = 0; // completed requests that shared a multi-request batch
  double mean_batch_size = 0.0;
  std::int64_t max_batch_size = 0;
  // Requests sitting in the admission queue at snapshot time — the instantaneous
  // backlog, not a lifetime counter. Bounded by queue_limit.
  std::size_t queue_depth_now = 0;
  LatencySnapshot latency;

  // Admission control. The queue is bounded: a request arriving at a full queue (or one
  // that would push the aggregate in-flight arena footprint past arena_bytes_cap) is
  // shed with a retry-after hint instead of queued — requests_shed counts both kinds.
  std::size_t queue_limit = 0;           // 0 = unbounded (legacy servers only)
  std::size_t arena_bytes_cap = 0;       // 0 = uncapped
  std::size_t inflight_arena_bytes = 0;  // admitted-but-not-completed plan footprint
  std::uint64_t requests_shed = 0;
  std::uint64_t requests_shed_queue_full = 0;
  std::uint64_t requests_shed_arena = 0;
  // Per-priority-lane latency split (index by RequestLane): the latency lane is popped
  // first under contention, so its tail should sit below the throughput lane's.
  LatencySnapshot lane_latency[2];

  // Topology-aware scale-out. num_nodes is the NUMA node count the serving plan saw
  // (1 on single-socket hosts); cross_node_dispatches counts batches a worker took on
  // a different node than the model's previous run (socket-affine dispatch falling
  // back — always 0 single-node); has_tuning_partition reports whether a dedicated
  // measured-mode tuning slice was carved out of the plan.
  int num_nodes = 1;
  int num_partitions = 0;
  std::uint64_t cross_node_dispatches = 0;
  bool has_tuning_partition = false;

  // Batch-aware tuning activity, aggregated over every registered model: background
  // per-batch re-tunes and the lifetime TuningCache traffic (the caches may be shared
  // beyond this server — e.g. with the compiles that produced the models).
  std::uint64_t retunes_started = 0;
  std::uint64_t retunes_completed = 0;
  std::uint64_t retunes_failed = 0;
  std::uint64_t retunes_deferred = 0;
  // Completed MEASURED-mode re-tunes — real-hardware winners the dedicated tuning
  // partition promoted into the shared cache (0 without measured_tuning_partition).
  std::uint64_t measured_retunes_promoted = 0;
  TuningCacheStats tuning_cache;

  // One slice per registered model, registry order.
  std::vector<ModelServeStats> per_model;

  std::string ToString() const;
  // Machine-readable export: the frontend's GET /stats body. Stable key order.
  std::string ToJson() const;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_SERVING_STATS_H_
