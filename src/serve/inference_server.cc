#include "src/serve/inference_server.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/base/cpu_info.h"
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/arena_pool.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/batch_util.h"

namespace neocpu {

InferenceServer::InferenceServer(ServerOptions options)
    : batcher_(options.batching), options_(options) {
  const CpuTopology& topology = HostTopology();
  num_nodes_ = topology.num_nodes();
  const int cores = options_.total_workers > 0 ? options_.total_workers
                                               : HostCpuInfo().physical_cores;
  num_executors_ = options_.num_executors > 0 ? options_.num_executors
                                              : (cores >= 2 ? 2 : 1);
  // Partition the cores across the pool, node-aligned on multi-node hosts. When the
  // pool is wider than the core count (useful on small CI hosts), the extra workers
  // run serial executors that timeshare. With measured_tuning_partition the tuning
  // slice is carved out first and serving gets the rest.
  RetuneOptions retune;
  retune.enabled = options_.background_retune;
  retune.num_workers = options_.retune_workers > 0 ? options_.retune_workers : 1;
  retune.bind_threads = false;
  if (options_.measured_tuning_partition) {
    ServingPlan serving_plan =
        PlanServingAndTuning(num_executors_, options_.total_workers, topology);
    partitions_ = std::move(serving_plan.serving);
    tuning_partition_ = std::move(serving_plan.tuning);
    has_tuning_partition_ = serving_plan.has_dedicated_tuning;
  } else {
    partitions_ = PlanCorePartitions(num_executors_, options_.total_workers, topology);
  }
  if (has_tuning_partition_) {
    // Measured-mode re-tunes run pinned on the dedicated slice: real-hardware kernel
    // timings taken off the serving path, winners promoted into the shared cache.
    retune.cpus = tuning_partition_.cpus.empty()
                      ? std::vector<int>{tuning_partition_.core_offset}
                      : tuning_partition_.cpus;
    retune.bind_threads = options_.bind_threads;
    retune.measured = true;
  } else {
    // Legacy path: background re-tunes run unpinned, seeded at the last partition's
    // cores — the "spare" end of the plan — so a re-tune competes with at most one
    // executor rather than with the whole pool.
    retune.core_offset = partitions_.empty() ? 0 : partitions_.back().core_offset;
  }
  registry_.ConfigureRetune(retune);

  // Per-socket weight replicas when the serving plan spans nodes: every partition then
  // reads its model constants from node-local pages (ExecutorFor in WorkerLoop).
  std::vector<int> replica_nodes;
  for (const CorePartition& partition : partitions_) {
    if (std::find(replica_nodes.begin(), replica_nodes.end(), partition.home_node) ==
        replica_nodes.end()) {
      replica_nodes.push_back(partition.home_node);
    }
  }
  if (replica_nodes.size() > 1) {
    registry_.ConfigureReplicas(replica_nodes);
  }

  MetricsRegistry::Global()
      .GetGauge("neocpu_topology_nodes", "NUMA nodes visible to the serving plan")
      ->Set(static_cast<double>(num_nodes_));
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    MetricsRegistry::Global()
        .GetGauge(StrFormat("neocpu_partition_%d_home_node", static_cast<int>(i)),
                  "Home NUMA node of this serving partition")
        ->Set(static_cast<double>(partitions_[i].home_node));
    MetricsRegistry::Global()
        .GetGauge(StrFormat("neocpu_partition_%d_width", static_cast<int>(i)),
                  "Worker threads of this serving partition")
        ->Set(static_cast<double>(partitions_[i].num_workers));
  }

  if (options_.profile_sample_rate > 0) {
    registry_.ConfigureProfiling(options_.profile_sample_rate);
  }
  if (options_.tracer != nullptr) {
    registry_.ConfigureTracing(options_.tracer);
  }

  workers_.reserve(static_cast<std::size_t>(num_executors_));
  for (int i = 0; i < num_executors_; ++i) {
    const bool pooled = i < static_cast<int>(partitions_.size());
    const CorePartition partition =
        pooled ? partitions_[static_cast<std::size_t>(i)] : CorePartition{};
    workers_.emplace_back([this, partition, pooled] { WorkerLoop(partition, pooled); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

ModelEntry* InferenceServer::RegisterModel(std::string name, CompiledModel model) {
  return registry_.Register(std::move(name), std::move(model));
}

ModelEntry* InferenceServer::RegisterModelFromFile(std::string name,
                                                   const std::string& path) {
  return registry_.RegisterFromFile(std::move(name), path);
}

const char* SubmitStatusName(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kOk:
      return "ok";
    case SubmitStatus::kUnknownModel:
      return "unknown-model";
    case SubmitStatus::kShapeMismatch:
      return "shape-mismatch";
    case SubmitStatus::kShedQueueFull:
      return "shed-queue-full";
    case SubmitStatus::kShedArenaBytes:
      return "shed-arena-bytes";
    case SubmitStatus::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

std::future<Tensor> InferenceServer::Submit(const std::string& model, Tensor input) {
  // Reproduce the legacy fatal diagnostics on top of the non-fatal path.
  NEOCPU_CHECK(!stopped_.load(std::memory_order_acquire))
      << "Submit after InferenceServer::Shutdown";
  ModelEntry* entry = registry_.Find(model);
  NEOCPU_CHECK(entry != nullptr) << "Submit: unregistered model '" << model << "'";
  const std::vector<std::int64_t>& expect = entry->sample_dims();
  NEOCPU_CHECK_EQ(input.ndim(), static_cast<int>(expect.size()))
      << model << ": request rank mismatch, got " << input.DebugString();
  for (int axis = 0; axis < input.ndim(); ++axis) {
    NEOCPU_CHECK_EQ(input.dim(axis), expect[static_cast<std::size_t>(axis)])
        << model << ": request shape mismatch at axis " << axis << ", got "
        << input.DebugString();
  }
  SubmitTicket ticket = TrySubmit(model, std::move(input));
  NEOCPU_CHECK(ticket.status != SubmitStatus::kShuttingDown)
      << "Submit after InferenceServer::Shutdown";
  NEOCPU_CHECK(ticket.ok()) << "Submit: request shed ("
                            << SubmitStatusName(ticket.status)
                            << ", retry after " << ticket.retry_after_ms
                            << " ms); size queue_limit for in-process load or use "
                               "TrySubmit and honor backpressure";
  return std::move(ticket.result);
}

SubmitTicket InferenceServer::TrySubmit(const std::string& model, Tensor input,
                                        SubmitOptions options) {
  SubmitTicket ticket;
  if (stopped_.load(std::memory_order_acquire)) {
    ticket.status = SubmitStatus::kShuttingDown;
    return ticket;
  }
  ModelEntry* entry = registry_.Find(model);
  if (entry == nullptr) {
    ticket.status = SubmitStatus::kUnknownModel;
    return ticket;
  }
  const std::vector<std::int64_t>& expect = entry->sample_dims();
  if (input.ndim() != static_cast<int>(expect.size())) {
    ticket.status = SubmitStatus::kShapeMismatch;
    return ticket;
  }
  for (int axis = 0; axis < input.ndim(); ++axis) {
    if (input.dim(axis) != expect[static_cast<std::size_t>(axis)]) {
      ticket.status = SubmitStatus::kShapeMismatch;
      return ticket;
    }
  }

  ServeRequest request;
  request.model = model;
  request.input = std::move(input);
  request.batchable = entry->batchable();
  request.enqueue_time = std::chrono::steady_clock::now();
  request.lane = options.lane;
  request.arena_bytes = entry->arena_bytes_per_sample();
  std::future<Tensor> future = request.result.get_future();
  // The push is the authoritative shutdown gate (checked under the batcher's lock):
  // the stopped_ check above can race a concurrent Shutdown, and a request accepted
  // after the workers drain would hang its future forever.
  switch (batcher_.TryPush(std::move(request))) {
    case AdmitResult::kAccepted:
      break;
    case AdmitResult::kShedQueueFull:
      ticket.status = SubmitStatus::kShedQueueFull;
      ticket.retry_after_ms = options_.batching.shed_retry_after_ms;
      return ticket;
    case AdmitResult::kShedArenaBytes:
      ticket.status = SubmitStatus::kShedArenaBytes;
      ticket.retry_after_ms = options_.batching.shed_retry_after_ms;
      return ticket;
    case AdmitResult::kShutdown:
      ticket.status = SubmitStatus::kShuttingDown;
      return ticket;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global()
      .GetCounter("neocpu_serve_requests_total", "Requests accepted by Submit")
      ->Increment();
  if (options_.tracer != nullptr) {
    options_.tracer->RecordInstant("request", "submit",
                                   StrFormat("\"model\":\"%s\"", model.c_str()));
  }
  ticket.status = SubmitStatus::kOk;
  ticket.result = std::move(future);
  return ticket;
}

void InferenceServer::WorkerLoop(const CorePartition& partition, bool pooled) {
  // Built in-thread so this thread is worker 0 of its partition, bound to the
  // partition's first cpu. Single-core partitions pin too (PinnedSerialEngine) so
  // their placement — and their arena's first touch — lands on the planned cpu.
  std::unique_ptr<ThreadEngine> owned;
  if (pooled && partition.num_workers > 1) {
    owned = std::make_unique<NeoThreadPool>(partition.num_workers, options_.bind_threads,
                                            partition.core_offset, partition.cpus);
  } else if (pooled && options_.bind_threads) {
    owned = std::make_unique<PinnedSerialEngine>(
        partition.cpus.empty() ? partition.core_offset : partition.cpus.front());
  } else {
    owned = std::make_unique<SerialEngine>();
  }
  ThreadEngine* engine = owned.get();

  // One warm arena per pool worker: planned executions reuse this block request after
  // request, so its pages are faulted once and stay resident and local to this
  // partition's cores (the partition's own threads do the first touch, and on NUMA
  // hosts the arena is additionally bound to the partition's home node). It grows to
  // the largest plan this worker ever runs and then never allocates again.
  Arena arena;
  if (pooled) {
    arena.set_home_node(partition.home_node);
  }

  // Socket-affine pops only when there is more than one node to be affine to; -1 keeps
  // the batcher's strictly-FIFO single-node fast path.
  const int worker_node = (pooled && num_nodes_ > 1) ? partition.home_node : -1;

  std::vector<ServeRequest> batch;
  while (batcher_.PopBatch(&batch, worker_node)) {
    ModelEntry* entry = registry_.Find(batch[0].model);
    NEOCPU_CHECK(entry != nullptr) << "model vanished: " << batch[0].model;
    const std::int64_t n = static_cast<std::int64_t>(batch.size());
    TraceRecorder* tracer = options_.tracer;
    const auto batch_begin = std::chrono::steady_clock::now();
    if (tracer != nullptr) {
      tracer->RecordInstant(
          "serve", "batch formed",
          StrFormat("\"model\":\"%s\",\"batch\":%lld", batch[0].model.c_str(),
                    static_cast<long long>(n)));
    }
    std::vector<Tensor> results;
    results.reserve(batch.size());
    if (n == 1) {
      // The shared_ptr pins the variant across a concurrent re-tune hot swap;
      // ExecutorFor picks this partition's node-local weight replica when one exists.
      const ModelEntry::VariantPtr variant = entry->VariantFor(1);
      results.push_back(variant->ExecutorFor(partition.home_node)
                            ->Run(batch[0].input, engine, &arena));
    } else {
      std::vector<Tensor> samples;
      samples.reserve(batch.size());
      for (const ServeRequest& r : batch) {
        samples.push_back(r.input);
      }
      const ModelEntry::VariantPtr variant = entry->VariantFor(n);
      Tensor stacked = StackBatch(samples);
      results = SplitBatch(
          variant->ExecutorFor(partition.home_node)->Run(stacked, engine, &arena), n);
    }

    // Stats first, promises last: a client that sees its future ready must also see the
    // request reflected in Stats().
    const auto now = std::chrono::steady_clock::now();
    if (tracer != nullptr) {
      // The batch span encloses the per-node spans the executor's tracer hook emitted.
      tracer->RecordSpan(
          "serve", StrFormat("batch %s x%lld", batch[0].model.c_str(),
                             static_cast<long long>(n)),
          batch_begin, now,
          StrFormat("\"model\":\"%s\",\"batch\":%lld", batch[0].model.c_str(),
                    static_cast<long long>(n)));
    }
    for (const ServeRequest& r : batch) {
      const double millis =
          std::chrono::duration<double, std::milli>(now - r.enqueue_time).count();
      latency_.Record(millis);
      lane_latency_[static_cast<int>(r.lane)].Record(millis);
    }
    completed_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    batch_runs_.fetch_add(1, std::memory_order_relaxed);
    if (n > 1) {
      batched_samples_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    }
    std::int64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (n > seen && !max_batch_.compare_exchange_weak(seen, n)) {
    }
    std::size_t arena_charged = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      arena_charged += batch[i].arena_bytes;
      batch[i].result.set_value(std::move(results[i]));
    }
    // The requests' plan footprints stop counting against the admission cap only once
    // their results are delivered — the cap bounds queued AND executing bytes.
    batcher_.ReleaseArena(arena_charged);
    batch.clear();
  }
}

void InferenceServer::Shutdown() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  batcher_.Shutdown();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

ServerStats InferenceServer::Stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.batch_runs = batch_runs_.load(std::memory_order_relaxed);
  stats.batched_samples = batched_samples_.load(std::memory_order_relaxed);
  stats.max_batch_size = max_batch_.load(std::memory_order_relaxed);
  stats.mean_batch_size = stats.batch_runs == 0
                              ? 0.0
                              : static_cast<double>(stats.completed) /
                                    static_cast<double>(stats.batch_runs);
  stats.latency = latency_.Snapshot();
  for (int lane = 0; lane < kNumRequestLanes; ++lane) {
    stats.lane_latency[lane] = lane_latency_[lane].Snapshot();
  }

  stats.queue_depth_now = batcher_.PendingCount();
  stats.queue_limit = options_.batching.queue_limit;
  stats.arena_bytes_cap = options_.batching.arena_bytes_cap;
  const AdmissionStats admission = batcher_.GetAdmissionStats();
  stats.inflight_arena_bytes = admission.inflight_arena_bytes;
  stats.requests_shed_queue_full = admission.sheds_queue_full;
  stats.requests_shed_arena = admission.sheds_arena;
  stats.requests_shed = admission.sheds_queue_full + admission.sheds_arena;
  stats.cross_node_dispatches = admission.cross_node_dispatches;

  stats.num_nodes = num_nodes_;
  stats.num_partitions = static_cast<int>(partitions_.size());
  stats.has_tuning_partition = has_tuning_partition_;

  const EntryTuningStats tuning = registry_.AggregateTuningStats();
  stats.retunes_started = tuning.retunes_started;
  stats.retunes_completed = tuning.retunes_completed;
  stats.retunes_failed = tuning.retunes_failed;
  stats.retunes_deferred = tuning.retunes_deferred;
  stats.measured_retunes_promoted = tuning.measured_retunes_promoted;
  stats.tuning_cache = tuning.cache;

  for (const std::string& name : registry_.ModelNames()) {
    ModelEntry* entry = registry_.Find(name);
    if (entry == nullptr) {
      continue;  // racing a re-registration
    }
    const EntryTuningStats entry_tuning = entry->TuningStats();
    ModelServeStats model;
    model.name = name;
    model.retunes_started = entry_tuning.retunes_started;
    model.retunes_completed = entry_tuning.retunes_completed;
    model.retunes_failed = entry_tuning.retunes_failed;
    model.retunes_deferred = entry_tuning.retunes_deferred;
    const NodeProfileSnapshot profile = entry->ProfileSnapshot();
    model.profiled_runs = profile.runs_sampled;
    model.profile_ms_per_run = profile.PerRunMs();
    stats.per_model.push_back(std::move(model));
  }
  return stats;
}

}  // namespace neocpu
