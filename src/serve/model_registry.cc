#include "src/serve/model_registry.h"

#include <set>
#include <utility>

#include "src/base/logging.h"
#include "src/core/serialization.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/partition.h"
#include "src/runtime/thread_pool.h"
#include "src/runtime/topology.h"

namespace neocpu {

Executor* ModelEntry::Variant::ExecutorFor(int node) const {
  if (node >= 0 && replicas_ready.load(std::memory_order_acquire)) {
    for (const std::unique_ptr<Replica>& replica : replicas) {
      if (replica->node == node) {
        return replica->executor.get();
      }
    }
  }
  return executor.get();
}

bool RetuneBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_concurrent_ > 0 && in_flight_ >= max_concurrent_) {
    ++deferred_;
    return false;
  }
  ++in_flight_;
  peak_ = in_flight_ > peak_ ? in_flight_ : peak_;
  return true;
}

void RetuneBudget::Release() {
  std::lock_guard<std::mutex> lock(mutex_);
  NEOCPU_CHECK_GT(in_flight_, 0);
  --in_flight_;
}

int RetuneBudget::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

int RetuneBudget::peak_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::uint64_t RetuneBudget::deferred() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deferred_;
}

ModelEntry::ModelEntry(std::string name, CompiledModel model) : name_(std::move(name)) {
  const Graph& g = model.graph();
  int num_inputs = 0;
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).type == OpType::kInput) {
      ++num_inputs;
      sample_dims_ = g.node(id).out_dims;
    }
  }
  NEOCPU_CHECK_EQ(num_inputs, 1) << name_ << ": serving requires single-input models";
  NEOCPU_CHECK_EQ(g.outputs().size(), 1u)
      << name_ << ": serving requires single-output models";
  NEOCPU_CHECK(!sample_dims_.empty()) << name_ << ": input has no dims";

  // Normalize the base variant to batch 1 (the per-request granularity). A model
  // registered at batch 1 whose graph refuses rebinding is still servable, just never
  // batched.
  CompiledModel base;
  if (RebindBatch(model, 1, &base)) {
    batchable_ = true;
  } else {
    NEOCPU_CHECK_EQ(sample_dims_[0], 1)
        << name_ << ": graph is not batch-rebindable and was registered at batch "
        << sample_dims_[0];
    base = std::move(model);
    batchable_ = false;
  }
  sample_dims_[0] = 1;

  // The admission controller charges this per admitted request, so the aggregate
  // in-flight plan footprint is a number the server can cap (plan-aware admission).
  arena_bytes_per_sample_ = base.stats().arena_bytes;

  Slot slot;
  slot.tuned = base.stats().tuned_batch == 1 || !base.has_source();
  slot.current = MakeVariant(std::move(base));
  variants_.emplace(1, std::move(slot));
}

ModelEntry::~ModelEntry() { WaitForRetunes(); }

ModelEntry::VariantPtr ModelEntry::MakeVariant(CompiledModel model) {
  auto variant = std::make_shared<Variant>();
  variant->model = std::make_unique<CompiledModel>(std::move(model));
  // The variant's memory plan rides along: pool workers execute this batch size inside
  // their partition's warm arena with zero per-request allocations.
  variant->executor = std::make_unique<Executor>(&variant->model->graph(),
                                                 /*engine=*/nullptr, variant->model->plan());
  return variant;
}

void ModelEntry::BuildReplicasLocked(const Variant& variant) {
  if (replica_nodes_.empty() || variant.replicas_ready.load(std::memory_order_acquire)) {
    return;
  }
  const CpuTopology& topology = HostTopology();
  for (int node : replica_nodes_) {
    auto replica = std::make_unique<Variant::Replica>();
    replica->node = node;
    // Node headers copy cheaply; the constant payloads still share the base's buffers
    // until the pinned builder thread below deep-clones them.
    replica->graph = variant.model->graph();
    // Clone on a thread pinned to the replica's node: the clone's allocation is
    // first-touched by the copy itself, so the weight pages land node-locally. Nodes
    // the host doesn't have (forced test layouts) clone unpinned — still a distinct
    // copy, exercising the exact serving path.
    Graph* graph = &replica->graph;
    const int bind_cpu = topology.FirstCpuOfNode(node);
    std::thread builder([graph, bind_cpu] {
      if (bind_cpu >= 0) {
        BindCurrentThreadToCpu(bind_cpu);
      }
      for (int id = 0; id < graph->num_nodes(); ++id) {
        Node& n = graph->node(id);
        if (n.type == OpType::kConstant && n.payload.defined()) {
          n.payload = n.payload.Clone();
        }
      }
    });
    builder.join();
    replica->executor = std::make_unique<Executor>(&replica->graph, /*engine=*/nullptr,
                                                   variant.model->plan());
    variant.replicas.push_back(std::move(replica));
  }
  variant.replicas_ready.store(true, std::memory_order_release);
}

ModelEntry::VariantPtr ModelEntry::VariantFor(std::int64_t batch) {
  NEOCPU_CHECK_GE(batch, 1);
  VariantPtr result;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = variants_.find(batch);
    if (it == variants_.end()) {
      NEOCPU_CHECK(batchable_) << name_ << ": batch " << batch
                               << " on a non-batchable model";
      const CompiledModel& base = *variants_.at(1).current->model;
      CompiledModel rebound;
      NEOCPU_CHECK(RebindBatch(base, batch, &rebound))
          << name_ << ": rebind to batch " << batch << " failed";
      Slot slot;
      // A rebind is "already tuned" only when the base's schedules were searched at
      // exactly this batch size (or there is no tuning state to improve it with).
      slot.tuned = rebound.stats().tuned_batch == batch || !rebound.has_source();
      slot.current = MakeVariant(std::move(rebound));
      BuildReplicasLocked(*slot.current);
      AttachObservabilityLocked(*slot.current);
      it = variants_.emplace(batch, std::move(slot)).first;
    }
    Slot& slot = it->second;
    if (!slot.tuned && !slot.retune_inflight && retune_options_.enabled && batchable_ &&
        slot.current->model->has_source()) {
      // Registry-wide concurrency budget: when spent, DEFER rather than queue — the
      // slot stays untuned and the next request for this batch size retries, so hot
      // batch sizes naturally win the budget under churn. (Duplicate in-flight
      // re-tunes for one (model, batch) are already coalesced by retune_inflight.)
      const std::shared_ptr<RetuneBudget> budget = retune_options_.budget;
      if (budget != nullptr && !budget->TryAcquire()) {
        retunes_deferred_.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::Global()
            .GetCounter("neocpu_retunes_deferred_total",
                        "Re-tunes skipped because the registry budget was spent")
            ->Increment();
      } else {
        // With nothing in flight, every thread in the vector has finished its work;
        // reap them (joins return ~immediately) so a long-lived server does not
        // accumulate one unjoined thread per batch size ever seen.
        if (retunes_inflight_ == 0) {
          finished.swap(retune_threads_);
        }
        slot.retune_inflight = true;
        ++retunes_inflight_;
        retunes_started_.fetch_add(1, std::memory_order_relaxed);
        retune_threads_.emplace_back([this, batch, budget] {
          RetuneSlot(batch);
          if (budget != nullptr) {
            budget->Release();
          }
        });
      }
    }
    result = slot.current;
  }
  for (std::thread& t : finished) {
    if (t.joinable()) {
      t.join();
    }
  }
  return result;
}

void ModelEntry::RetuneSlot(std::int64_t batch) {
  VariantPtr base;
  RetuneOptions opts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = variants_.at(1).current;
    opts = retune_options_;
  }
  // The engine lives in this background thread: re-tunes run off the serving executors'
  // partitions. The measured-mode tuning partition hands its exact cpu slice through
  // opts.cpus — the engine (and this thread, as its worker 0) binds there, so
  // real-hardware timings never run on cores serving traffic.
  std::unique_ptr<ThreadEngine> engine;
  if (!opts.cpus.empty()) {
    const CorePartition tuning_slice{opts.cpus.front(),
                                     static_cast<int>(opts.cpus.size()), 0, opts.cpus};
    engine = MakePartitionEngine(tuning_slice, opts.bind_threads);
  } else if (opts.num_workers > 1) {
    engine = std::make_unique<NeoThreadPool>(opts.num_workers, opts.bind_threads,
                                             opts.core_offset);
  } else {
    engine = std::make_unique<SerialEngine>();
  }
  // Measured mode flips the cost model to real-hardware timings for this re-tune; the
  // winners are keyed kMeasured in the shared cache, so they coexist with (never
  // overwrite) the analytic entries and every future compile against the shared cache
  // in measured mode is a pure lookup — the promotion.
  CompileConfig measured_config;
  const CompileConfig* config_override = nullptr;
  if (opts.measured) {
    measured_config = base->model->config();
    measured_config.cost_mode = CostMode::kMeasured;
    config_override = &measured_config;
  }
  CompiledModel tuned;
  const bool ok =
      RetuneForBatch(*base->model, batch, engine.get(), &tuned, config_override);
  // Build the replacement variant before taking the lock: only the pointer swap needs
  // the mutex, not the executor construction.
  VariantPtr replacement = ok ? MakeVariant(std::move(tuned)) : nullptr;

  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = variants_.at(batch);
  slot.retune_inflight = false;
  --retunes_inflight_;
  if (ok) {
    slot.current = std::move(replacement);  // hot swap; old variant drains via shared_ptr
    BuildReplicasLocked(*slot.current);
    AttachObservabilityLocked(*slot.current);
    slot.tuned = true;
    retunes_completed_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global()
        .GetCounter("neocpu_retunes_completed_total",
                    "Background per-batch re-tunes that hot-swapped a variant")
        ->Increment();
    if (opts.measured) {
      measured_promoted_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global()
          .GetCounter("neocpu_measured_retunes_promoted_total",
                      "Measured-mode re-tunes whose winners entered the shared cache")
          ->Increment();
    }
  } else {
    slot.tuned = true;  // don't retry a model that cannot be re-tuned
    retunes_failed_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global()
        .GetCounter("neocpu_retunes_failed_total",
                    "Background per-batch re-tunes that could not produce a variant")
        ->Increment();
  }
}

void ModelEntry::ConfigureRetune(const RetuneOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  retune_options_ = options;
}

void ModelEntry::ConfigureReplicas(const std::vector<int>& nodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!replica_nodes_.empty()) {
    return;  // replication is configured once (the server does it at startup)
  }
  replica_nodes_ = nodes;
  for (auto& [batch, slot] : variants_) {
    BuildReplicasLocked(*slot.current);
    // Re-attach so the replicas' executors pick up the profiler/tracer too.
    AttachObservabilityLocked(*slot.current);
  }
}

void ModelEntry::AttachObservabilityLocked(const Variant& variant) {
  // variant is shared as const, but its executor is reached through a const
  // unique_ptr whose pointee stays mutable — and the hook setters are atomic
  // stores, safe against Runs already in flight.
  NodeProfiler* profiler = nullptr;
  if (profile_sample_rate_ > 0) {
    auto owned = std::make_unique<NodeProfiler>(profile_sample_rate_);
    owned->RegisterGraph(variant.model->graph());
    profiler = owned.get();
    profilers_.push_back(std::move(owned));
  }
  variant.executor->SetProfiler(profiler);
  variant.executor->SetTracer(tracer_);
  // Replicas execute the same node ids, so they share the variant's profiler — the
  // snapshot aggregates all nodes' executions regardless of which replica ran them.
  for (const std::unique_ptr<Variant::Replica>& replica : variant.replicas) {
    replica->executor->SetProfiler(profiler);
    replica->executor->SetTracer(tracer_);
  }
}

void ModelEntry::ConfigureProfiling(std::uint32_t sample_rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  profile_sample_rate_ = sample_rate;
  for (auto& [batch, slot] : variants_) {
    AttachObservabilityLocked(*slot.current);
  }
}

void ModelEntry::ConfigureTracing(TraceRecorder* tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracer_ = tracer;
  for (auto& [batch, slot] : variants_) {
    slot.current->executor->SetTracer(tracer_);
    for (const std::unique_ptr<Variant::Replica>& replica : slot.current->replicas) {
      replica->executor->SetTracer(tracer_);
    }
  }
}

NodeProfileSnapshot ModelEntry::ProfileSnapshot() const {
  std::vector<NodeProfileSnapshot> parts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    parts.reserve(profilers_.size());
    for (const std::unique_ptr<NodeProfiler>& profiler : profilers_) {
      parts.push_back(profiler->Snapshot());
    }
  }
  return MergeProfileSnapshots(parts);
}

void ModelEntry::WaitForRetunes() {
  for (;;) {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      threads.swap(retune_threads_);
    }
    if (threads.empty()) {
      return;
    }
    for (std::thread& t : threads) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
}

EntryTuningStats ModelEntry::TuningStats() const {
  EntryTuningStats stats;
  stats.retunes_started = retunes_started_.load(std::memory_order_relaxed);
  stats.retunes_completed = retunes_completed_.load(std::memory_order_relaxed);
  stats.retunes_failed = retunes_failed_.load(std::memory_order_relaxed);
  stats.retunes_deferred = retunes_deferred_.load(std::memory_order_relaxed);
  stats.measured_retunes_promoted = measured_promoted_.load(std::memory_order_relaxed);
  if (std::shared_ptr<TuningCache> cache = tuning_cache()) {
    stats.cache = cache->Stats();
  }
  return stats;
}

std::shared_ptr<TuningCache> ModelEntry::tuning_cache() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return variants_.at(1).current->model->tuning();
}

ModelEntry* ModelRegistry::Register(std::string name, CompiledModel model) {
  // Fold the model's own tuning into the registry-wide cache and serve from that one
  // cache from here on: re-tunes for workloads any registered model already searched
  // become pure lookups.
  if (model.has_source() && model.tuning() != nullptr &&
      model.tuning() != shared_cache_) {
    shared_cache_->MergeFrom(*model.tuning());
    model.ReplaceTuningCache(shared_cache_);
  }
  auto entry = std::make_unique<ModelEntry>(name, std::move(model));
  ModelEntry* raw = entry.get();
  std::lock_guard<std::mutex> lock(mutex_);
  entry->ConfigureRetune(retune_options_);
  if (!replica_nodes_.empty()) {
    entry->ConfigureReplicas(replica_nodes_);
  }
  if (profile_sample_rate_ > 0) {
    entry->ConfigureProfiling(profile_sample_rate_);
  }
  if (tracer_ != nullptr) {
    entry->ConfigureTracing(tracer_);
  }
  std::unique_ptr<ModelEntry>& slot = entries_[std::move(name)];
  if (slot != nullptr) {
    retired_.push_back(std::move(slot));  // may still be referenced by in-flight work
  }
  slot = std::move(entry);
  return raw;
}

ModelEntry* ModelRegistry::RegisterFromFile(std::string name, const std::string& path) {
  CompiledModel model;
  if (!LoadModule(path, &model)) {
    LOG(ERROR) << "failed to load module '" << path << "' for model '" << name << "'";
    return nullptr;
  }
  return Register(std::move(name), std::move(model));
}

ModelEntry* ModelRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

void ModelRegistry::ConfigureRetune(const RetuneOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  retune_options_ = options;
  // One budget shared by every entry (current and future): the cap is registry-wide.
  if (retune_options_.max_concurrent_retunes > 0 && retune_options_.budget == nullptr) {
    retune_options_.budget =
        std::make_shared<RetuneBudget>(retune_options_.max_concurrent_retunes);
  }
  for (const auto& [name, entry] : entries_) {
    entry->ConfigureRetune(retune_options_);
  }
}

void ModelRegistry::ConfigureReplicas(const std::vector<int>& nodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  replica_nodes_ = nodes;
  for (const auto& [name, entry] : entries_) {
    entry->ConfigureReplicas(nodes);
  }
}

void ModelRegistry::ConfigureProfiling(std::uint32_t sample_rate) {
  std::lock_guard<std::mutex> lock(mutex_);
  profile_sample_rate_ = sample_rate;
  for (const auto& [name, entry] : entries_) {
    entry->ConfigureProfiling(sample_rate);
  }
}

void ModelRegistry::ConfigureTracing(TraceRecorder* tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracer_ = tracer;
  for (const auto& [name, entry] : entries_) {
    entry->ConfigureTracing(tracer);
  }
}

EntryTuningStats ModelRegistry::AggregateTuningStats() const {
  std::vector<ModelEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      entries.push_back(entry.get());
    }
  }
  EntryTuningStats total;
  // Models may share one TuningCache (e.g. compiled against a common cache); count
  // each distinct cache once or shared caches would be multiply counted.
  std::set<const TuningCache*> seen_caches;
  for (ModelEntry* entry : entries) {
    const EntryTuningStats stats = entry->TuningStats();
    total.retunes_started += stats.retunes_started;
    total.retunes_completed += stats.retunes_completed;
    total.retunes_failed += stats.retunes_failed;
    total.retunes_deferred += stats.retunes_deferred;
    total.measured_retunes_promoted += stats.measured_retunes_promoted;
    const std::shared_ptr<TuningCache> cache = entry->tuning_cache();
    if (cache != nullptr && seen_caches.insert(cache.get()).second) {
      total.cache.hits += stats.cache.hits;
      total.cache.misses += stats.cache.misses;
      total.cache.inserts += stats.cache.inserts;
      total.cache.entries += stats.cache.entries;
    }
  }
  return total;
}

void ModelRegistry::WaitForRetunes() {
  std::vector<ModelEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      entries.push_back(entry.get());
    }
  }
  for (ModelEntry* entry : entries) {
    entry->WaitForRetunes();
  }
}

}  // namespace neocpu
