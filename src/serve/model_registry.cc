#include "src/serve/model_registry.h"

#include <utility>

#include "src/base/logging.h"
#include "src/core/serialization.h"

namespace neocpu {

ModelEntry::ModelEntry(std::string name, CompiledModel model) : name_(std::move(name)) {
  const Graph& g = model.graph();
  int num_inputs = 0;
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).type == OpType::kInput) {
      ++num_inputs;
      sample_dims_ = g.node(id).out_dims;
    }
  }
  NEOCPU_CHECK_EQ(num_inputs, 1) << name_ << ": serving requires single-input models";
  NEOCPU_CHECK_EQ(g.outputs().size(), 1u)
      << name_ << ": serving requires single-output models";
  NEOCPU_CHECK(!sample_dims_.empty()) << name_ << ": input has no dims";

  // Normalize the base variant to batch 1 (the per-request granularity). A model
  // registered at batch 1 whose graph refuses rebinding is still servable, just never
  // batched.
  CompiledModel base;
  if (RebindBatch(model, 1, &base)) {
    batchable_ = true;
  } else {
    NEOCPU_CHECK_EQ(sample_dims_[0], 1)
        << name_ << ": graph is not batch-rebindable and was registered at batch "
        << sample_dims_[0];
    base = std::move(model);
    batchable_ = false;
  }
  sample_dims_[0] = 1;

  Variant v;
  v.model = std::make_unique<CompiledModel>(std::move(base));
  v.executor = std::make_unique<Executor>(&v.model->graph());
  variants_.emplace(1, std::move(v));
}

const ModelEntry::Variant& ModelEntry::VariantFor(std::int64_t batch) {
  NEOCPU_CHECK_GE(batch, 1);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = variants_.find(batch);
  if (it != variants_.end()) {
    return it->second;
  }
  NEOCPU_CHECK(batchable_) << name_ << ": batch " << batch << " on a non-batchable model";
  CompiledModel rebound;
  NEOCPU_CHECK(RebindBatch(*variants_.at(1).model, batch, &rebound))
      << name_ << ": rebind to batch " << batch << " failed";
  Variant v;
  v.model = std::make_unique<CompiledModel>(std::move(rebound));
  v.executor = std::make_unique<Executor>(&v.model->graph());
  return variants_.emplace(batch, std::move(v)).first->second;
}

ModelEntry* ModelRegistry::Register(std::string name, CompiledModel model) {
  auto entry = std::make_unique<ModelEntry>(name, std::move(model));
  ModelEntry* raw = entry.get();
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<ModelEntry>& slot = entries_[std::move(name)];
  if (slot != nullptr) {
    retired_.push_back(std::move(slot));  // may still be referenced by in-flight work
  }
  slot = std::move(entry);
  return raw;
}

ModelEntry* ModelRegistry::RegisterFromFile(std::string name, const std::string& path) {
  CompiledModel model;
  if (!LoadModule(path, &model)) {
    LOG(ERROR) << "failed to load module '" << path << "' for model '" << name << "'";
    return nullptr;
  }
  return Register(std::move(name), std::move(model));
}

ModelEntry* ModelRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace neocpu
