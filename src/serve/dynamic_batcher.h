// Dynamic request batching with bounded admission (the IntelCaffe / serving-systems
// technique, hardened for overload).
//
// Single-image requests queue up per priority lane in arrival order; an executor-pool
// worker pops a *batch*: the longest front run of mutually compatible requests of the
// highest-priority non-empty lane, capped at max_batch_size. A partial batch is held
// back until the oldest request in it has waited max_delay_ms, trading that bounded
// extra latency for the throughput of a batched kernel invocation. Requests that cannot
// batch — a different model, a different input shape, or a model whose graph cannot be
// batch-rebound — simply form a batch of one (bypass); FIFO order across batches is
// preserved *within a lane*.
//
// Admission is bounded on two axes (backpressure instead of unbounded queueing):
//   * queue_limit — at most this many requests may wait across both lanes; a request
//     arriving at a full queue is shed with kShedQueueFull and a retry-after hint.
//   * arena_bytes_cap — each request carries its model's planned per-sample arena
//     footprint (CompileStats::arena_bytes); the aggregate over every admitted-but-not-
//     completed request may not exceed the cap. The charge is taken at TryPush and
//     released by ReleaseArena once the worker has fulfilled the request, so the cap
//     bounds queued AND executing plan bytes — the number that actually backs arenas.
#ifndef NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_
#define NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace neocpu {

// Priority lanes: the latency lane is always popped before the throughput lane, so a
// latency-tier request never waits behind bulk traffic (it still waits behind older
// latency-tier requests). Enumerator values appear on the wire — append only.
enum class RequestLane : std::uint8_t {
  kLatency = 0,
  kThroughput = 1,
};
inline constexpr int kNumRequestLanes = 2;

const char* RequestLaneName(RequestLane lane);

// One in-flight inference request. Created by InferenceServer::Submit; fulfilled by an
// executor-pool worker.
struct ServeRequest {
  std::string model;
  Tensor input;  // single-sample tensor, dims {1, ...}
  std::promise<Tensor> result;
  bool batchable = true;  // false forces a batch of one
  std::chrono::steady_clock::time_point enqueue_time;
  RequestLane lane = RequestLane::kLatency;
  // Planned per-sample arena footprint of the request's model; charged against
  // arena_bytes_cap while the request is in flight (0 = exempt from the cap).
  std::size_t arena_bytes = 0;
};

struct BatchingOptions {
  std::int64_t max_batch_size = 8;
  double max_delay_ms = 2.0;  // max time a request may wait for batch-mates
  // Bounded admission queue: at most this many waiting requests across both lanes
  // before TryPush sheds (0 = unbounded; in-process callers that predate admission).
  std::size_t queue_limit = 1024;
  // Cap on the aggregate in-flight arena bytes (queued + executing); 0 = uncapped.
  std::size_t arena_bytes_cap = 0;
  // Retry-after hint returned with every shed, for clients to back off by.
  double shed_retry_after_ms = 25.0;
};

// TryPush verdict. Everything but kAccepted leaves the request with the caller (the
// promise is untouched, so the caller owns the typed-error reply).
enum class AdmitResult {
  kAccepted = 0,
  kShedQueueFull,   // queue_limit waiting requests already
  kShedArenaBytes,  // admitting would push in-flight arena bytes past the cap
  kShutdown,        // batcher is shut down
};

// Lifetime admission counters (monotonic) plus the instantaneous in-flight footprint.
struct AdmissionStats {
  std::uint64_t sheds_queue_full = 0;
  std::uint64_t sheds_arena = 0;
  std::size_t inflight_arena_bytes = 0;
  // Batches taken by a worker on a different NUMA node than the one the model last
  // executed on (socket-affine dispatch falling back across nodes). Always 0 on
  // single-node hosts and for workers popping with worker_node = -1.
  std::uint64_t cross_node_dispatches = 0;
};

class Counter;
class Gauge;
class Histogram;

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchingOptions options);

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // Bounded admission: enqueues the request on its lane and wakes a waiting worker, or
  // sheds. On any non-kAccepted verdict the request is untouched beyond the move and
  // the caller still holds its promise.
  AdmitResult TryPush(ServeRequest request);

  // Legacy convenience: TryPush, true iff accepted. Callers that need to distinguish
  // shedding from shutdown use TryPush.
  bool Push(ServeRequest request);

  // Blocks until a batch is ready and moves it into `out`. A batch is released when it
  // is full, when its oldest request has waited max_delay_ms, when its front request is
  // non-batchable (batch of one), or immediately on shutdown (drain). The latency lane
  // is always served before the throughput lane. Returns false only once the batcher is
  // shut down AND both lanes are empty.
  //
  // `worker_node` makes the dispatch socket-affine: a worker that passes its home NUMA
  // node (>= 0) will briefly yield a flushable batch whose model last executed on a
  // DIFFERENT node while a worker of that node is also waiting — the node with the hot
  // weight replica and warm LLC gets first claim. The yield is one bounded grace wait
  // (a fraction of max_delay_ms), after which the foreign worker takes the batch
  // anyway: traffic falls back across nodes rather than queueing behind a busy socket.
  // Cross-node takes are counted (AdmissionStats::cross_node_dispatches). -1 keeps the
  // legacy strictly-FIFO behavior.
  bool PopBatch(std::vector<ServeRequest>* out, int worker_node = -1);

  // Returns the arena charge taken at admission. The worker calls this once a batch's
  // requests are fulfilled; until then the bytes count against arena_bytes_cap.
  void ReleaseArena(std::size_t bytes);

  // Stops accepting delay-based holds; queued requests drain, then PopBatch returns
  // false. Safe to call more than once.
  void Shutdown();

  std::size_t PendingCount() const;
  std::size_t PendingCount(RequestLane lane) const;
  AdmissionStats GetAdmissionStats() const;
  const BatchingOptions& options() const { return options_; }

 private:
  static bool Compatible(const ServeRequest& a, const ServeRequest& b);
  void UpdateQueueMetricsLocked();

  BatchingOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<ServeRequest> lanes_[kNumRequestLanes];
  bool shutdown_ = false;
  std::size_t inflight_arena_bytes_ = 0;  // queued + executing; guarded by mutex_
  std::uint64_t sheds_queue_full_ = 0;
  std::uint64_t sheds_arena_ = 0;
  std::uint64_t cross_node_dispatches_ = 0;
  // Socket affinity state (guarded by mutex_): the node each model last executed on —
  // where its LLC lines and (with replicas everywhere) its hot pages live — and how
  // many workers per node are currently parked in PopBatch.
  std::map<std::string, int> model_last_node_;
  std::map<int, int> waiting_by_node_;
  // Process-global metrics (obs/metrics), resolved once at construction: instantaneous
  // queue depth / in-flight arena bytes, the realized batch-size distribution, and the
  // lifetime shed count. Every batcher in the process feeds the same instruments — the
  // registry hands back the same handles.
  Gauge* queue_depth_metric_;
  Gauge* inflight_arena_metric_;
  Histogram* batch_size_metric_;
  Counter* sheds_metric_;
  Counter* cross_node_metric_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_
