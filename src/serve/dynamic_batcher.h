// Dynamic request batching (the IntelCaffe / serving-systems technique).
//
// Single-image requests queue up in arrival order; an executor-pool worker pops a
// *batch*: the longest front run of mutually compatible requests, capped at
// max_batch_size. A partial batch is held back until the oldest request in it has
// waited max_delay_ms, trading that bounded extra latency for the throughput of a
// batched kernel invocation. Requests that cannot batch — a different model, a
// different input shape, or a model whose graph cannot be batch-rebound — simply form
// a batch of one (bypass); FIFO order across batches is preserved.
#ifndef NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_
#define NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace neocpu {

// One in-flight inference request. Created by InferenceServer::Submit; fulfilled by an
// executor-pool worker.
struct ServeRequest {
  std::string model;
  Tensor input;  // single-sample tensor, dims {1, ...}
  std::promise<Tensor> result;
  bool batchable = true;  // false forces a batch of one
  std::chrono::steady_clock::time_point enqueue_time;
};

struct BatchingOptions {
  std::int64_t max_batch_size = 8;
  double max_delay_ms = 2.0;  // max time a request may wait for batch-mates
};

class Gauge;
class Histogram;

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatchingOptions options);

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  // Enqueues a request and wakes a waiting worker. Returns false (request untouched
  // beyond the move) once the batcher is shut down — after shutdown the workers may
  // already have drained and exited, so accepting the request would strand its promise.
  bool Push(ServeRequest request);

  // Blocks until a batch is ready and moves it into `out`. A batch is released when it
  // is full, when its oldest request has waited max_delay_ms, when its front request is
  // non-batchable (batch of one), or immediately on shutdown (drain). Returns false
  // only once the batcher is shut down AND the queue is empty.
  bool PopBatch(std::vector<ServeRequest>* out);

  // Stops accepting delay-based holds; queued requests drain, then PopBatch returns
  // false. Safe to call more than once.
  void Shutdown();

  std::size_t PendingCount() const;
  const BatchingOptions& options() const { return options_; }

 private:
  static bool Compatible(const ServeRequest& a, const ServeRequest& b);

  BatchingOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<ServeRequest> queue_;
  bool shutdown_ = false;
  // Process-global metrics (obs/metrics), resolved once at construction: instantaneous
  // queue depth and the realized batch-size distribution. Every batcher in the process
  // feeds the same pair — the registry hands back the same instruments.
  Gauge* queue_depth_metric_;
  Histogram* batch_size_metric_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_DYNAMIC_BATCHER_H_
