#include "src/serve/dynamic_batcher.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace neocpu {

const char* RequestLaneName(RequestLane lane) {
  switch (lane) {
    case RequestLane::kLatency:
      return "latency";
    case RequestLane::kThroughput:
      return "throughput";
  }
  return "unknown";
}

DynamicBatcher::DynamicBatcher(BatchingOptions options)
    : options_(options),
      queue_depth_metric_(MetricsRegistry::Global().GetGauge(
          "neocpu_serve_queue_depth", "Requests waiting in the admission queue")),
      inflight_arena_metric_(MetricsRegistry::Global().GetGauge(
          "neocpu_serve_inflight_arena_bytes",
          "Aggregate planned arena bytes of admitted-but-not-completed requests")),
      batch_size_metric_(MetricsRegistry::Global().GetHistogram(
          "neocpu_serve_batch_size", {1, 2, 4, 8, 16, 32},
          "Realized batch sizes popped by executor-pool workers")),
      sheds_metric_(MetricsRegistry::Global().GetCounter(
          "neocpu_serve_requests_shed_total",
          "Requests shed by bounded admission (queue-full + arena-cap)")),
      cross_node_metric_(MetricsRegistry::Global().GetCounter(
          "neocpu_cross_node_dispatch_total",
          "Batches executed on a different NUMA node than the model's last run")) {}

bool DynamicBatcher::Compatible(const ServeRequest& a, const ServeRequest& b) {
  return a.batchable && b.batchable && a.model == b.model &&
         a.input.dims() == b.input.dims();
}

void DynamicBatcher::UpdateQueueMetricsLocked() {
  queue_depth_metric_->Set(
      static_cast<double>(lanes_[0].size() + lanes_[1].size()));
  inflight_arena_metric_->Set(static_cast<double>(inflight_arena_bytes_));
}

AdmitResult DynamicBatcher::TryPush(ServeRequest request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return AdmitResult::kShutdown;
    }
    const std::size_t waiting = lanes_[0].size() + lanes_[1].size();
    if (options_.queue_limit > 0 && waiting >= options_.queue_limit) {
      ++sheds_queue_full_;
      sheds_metric_->Increment();
      return AdmitResult::kShedQueueFull;
    }
    // Strict cap: a single request whose plan alone exceeds the cap is a configuration
    // error (raise the cap), not a reason to burst past it — the gauge never lies.
    if (options_.arena_bytes_cap > 0 && request.arena_bytes > 0 &&
        inflight_arena_bytes_ + request.arena_bytes > options_.arena_bytes_cap) {
      ++sheds_arena_;
      sheds_metric_->Increment();
      return AdmitResult::kShedArenaBytes;
    }
    inflight_arena_bytes_ += request.arena_bytes;
    lanes_[static_cast<int>(request.lane)].push_back(std::move(request));
    UpdateQueueMetricsLocked();
  }
  // notify_all, not notify_one: a push can both complete one worker's partial batch and
  // leave an incompatible request for another waiting worker.
  ready_cv_.notify_all();
  return AdmitResult::kAccepted;
}

bool DynamicBatcher::Push(ServeRequest request) {
  return TryPush(std::move(request)) == AdmitResult::kAccepted;
}

bool DynamicBatcher::PopBatch(std::vector<ServeRequest>* out, int worker_node) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (worker_node >= 0) {
    ++waiting_by_node_[worker_node];
  }
  // At most one affinity yield per pop: after the grace wait the batch goes to
  // whichever worker gets here first — cross-node beats queueing.
  bool yielded = false;
  for (;;) {
    ready_cv_.wait(lock, [&] {
      return !lanes_[0].empty() || !lanes_[1].empty() || shutdown_;
    });
    if (lanes_[0].empty() && lanes_[1].empty()) {
      if (worker_node >= 0) {
        --waiting_by_node_[worker_node];
      }
      return false;  // shutdown and drained
    }
    // Lanes in priority order: the first lane with a flushable front batch wins; when
    // every non-empty lane is holding a partial batch, sleep until the earliest
    // deadline. The latency lane going first is the whole point of the lanes.
    bool have_deadline = false;
    bool yield_now = false;
    std::chrono::steady_clock::time_point earliest{};
    for (std::deque<ServeRequest>& queue : lanes_) {
      if (queue.empty()) {
        continue;
      }
      // Longest mutually compatible front run, capped at max_batch_size.
      std::size_t run = 1;
      const std::size_t cap = static_cast<std::size_t>(std::max<std::int64_t>(
          1, queue.front().batchable ? options_.max_batch_size : 1));
      while (run < cap && run < queue.size() && Compatible(queue.front(), queue[run])) {
        ++run;
      }
      const auto deadline =
          queue.front().enqueue_time +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(options_.max_delay_ms));
      // A run stopped by an incompatible successor can never grow (later arrivals queue
      // behind it), so holding it for the delay would be pure added latency.
      const bool blocked = run < queue.size() && run < cap;
      const bool flush = run >= cap || blocked || shutdown_ ||
                         std::chrono::steady_clock::now() >= deadline;
      if (flush) {
        // Socket-affine dispatch: when the batch's model last ran on another node and
        // a worker of that node is parked right here, give it one bounded chance to
        // claim the batch (its node holds the hot weight replica and warm LLC lines).
        // Never past the request's own deadline, never during shutdown.
        if (worker_node >= 0 && !yielded && !shutdown_) {
          const auto hint = model_last_node_.find(queue.front().model);
          if (hint != model_last_node_.end() && hint->second != worker_node) {
            const auto parked = waiting_by_node_.find(hint->second);
            if (parked != waiting_by_node_.end() && parked->second > 0 &&
                std::chrono::steady_clock::now() < deadline) {
              yield_now = true;
              break;
            }
          }
        }
        out->clear();
        out->reserve(run);
        for (std::size_t i = 0; i < run; ++i) {
          out->push_back(std::move(queue.front()));
          queue.pop_front();
        }
        UpdateQueueMetricsLocked();
        batch_size_metric_->Observe(static_cast<double>(run));
        if (worker_node >= 0) {
          const auto hint = model_last_node_.find(out->front().model);
          if (hint != model_last_node_.end() && hint->second != worker_node) {
            ++cross_node_dispatches_;
            cross_node_metric_->Increment();
          }
          model_last_node_[out->front().model] = worker_node;
          --waiting_by_node_[worker_node];
        }
        return true;
      }
      if (!have_deadline || deadline < earliest) {
        have_deadline = true;
        earliest = deadline;
      }
    }
    if (yield_now) {
      // The grace window is a fraction of the batching delay: long enough for a
      // node-local worker to wake and take the batch, short enough that a busy remote
      // socket falls back here instead of stalling the request.
      yielded = true;
      ready_cv_.wait_for(lock, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::duration<double, std::milli>(
                                       std::max(0.05, options_.max_delay_ms * 0.25))));
      continue;
    }
    // Partial batches only: wait for batch-mates until the earliest front-request
    // deadline. A timeout flushes whatever run has formed by then.
    ready_cv_.wait_until(lock, earliest);
  }
}

void DynamicBatcher::ReleaseArena(std::size_t bytes) {
  if (bytes == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_arena_bytes_ -= std::min(bytes, inflight_arena_bytes_);
  UpdateQueueMetricsLocked();
}

void DynamicBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t DynamicBatcher::PendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_[0].size() + lanes_[1].size();
}

std::size_t DynamicBatcher::PendingCount(RequestLane lane) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_[static_cast<int>(lane)].size();
}

AdmissionStats DynamicBatcher::GetAdmissionStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionStats stats;
  stats.sheds_queue_full = sheds_queue_full_;
  stats.sheds_arena = sheds_arena_;
  stats.inflight_arena_bytes = inflight_arena_bytes_;
  stats.cross_node_dispatches = cross_node_dispatches_;
  return stats;
}

}  // namespace neocpu
