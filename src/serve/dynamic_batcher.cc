#include "src/serve/dynamic_batcher.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace neocpu {

DynamicBatcher::DynamicBatcher(BatchingOptions options)
    : options_(options),
      queue_depth_metric_(MetricsRegistry::Global().GetGauge(
          "neocpu_serve_queue_depth", "Requests waiting in the dynamic batcher")),
      batch_size_metric_(MetricsRegistry::Global().GetHistogram(
          "neocpu_serve_batch_size", {1, 2, 4, 8, 16, 32},
          "Realized batch sizes popped by executor-pool workers")) {}

bool DynamicBatcher::Compatible(const ServeRequest& a, const ServeRequest& b) {
  return a.batchable && b.batchable && a.model == b.model &&
         a.input.dims() == b.input.dims();
}

bool DynamicBatcher::Push(ServeRequest request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(request));
    queue_depth_metric_->Set(static_cast<double>(queue_.size()));
  }
  // notify_all, not notify_one: a push can both complete one worker's partial batch and
  // leave an incompatible request for another waiting worker.
  ready_cv_.notify_all();
  return true;
}

bool DynamicBatcher::PopBatch(std::vector<ServeRequest>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ready_cv_.wait(lock, [&] { return !queue_.empty() || shutdown_; });
    if (queue_.empty()) {
      return false;  // shutdown and drained
    }
    // Longest mutually compatible front run, capped at max_batch_size.
    std::size_t run = 1;
    const std::size_t cap = static_cast<std::size_t>(std::max<std::int64_t>(
        1, queue_.front().batchable ? options_.max_batch_size : 1));
    while (run < cap && run < queue_.size() && Compatible(queue_.front(), queue_[run])) {
      ++run;
    }
    const auto deadline =
        queue_.front().enqueue_time +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(options_.max_delay_ms));
    // A run stopped by an incompatible successor can never grow (later arrivals queue
    // behind it), so holding it for the delay would be pure added latency.
    const bool blocked = run < queue_.size() && run < cap;
    const bool flush = run >= cap || blocked || shutdown_ ||
                       std::chrono::steady_clock::now() >= deadline;
    if (flush) {
      out->clear();
      out->reserve(run);
      for (std::size_t i = 0; i < run; ++i) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_metric_->Set(static_cast<double>(queue_.size()));
      batch_size_metric_->Observe(static_cast<double>(run));
      return true;
    }
    // Partial batch: wait for batch-mates until the front request's deadline. A timeout
    // flushes whatever run has formed by then.
    ready_cv_.wait_until(lock, deadline);
  }
}

void DynamicBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t DynamicBatcher::PendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace neocpu
