// Concurrent inference serving on top of the compiled graph.
//
//                    ┌──────────────┐   batches   ┌────────────────────────────┐
//   Submit() ──────▶ │ DynamicBatch │ ──────────▶ │ executor pool: N workers,  │
//   (any thread)     │   er (FIFO)  │             │ each on a disjoint core    │
//   future<Tensor> ◀─┴──────────────┘             │ partition of the host      │
//                                                 └────────────────────────────┘
//
// The executor pool realizes the paper's Figure-4 observation: thread-pool scalability
// flattens well before the full core count for batch-1 CNN inference, so two executors
// on half the cores each serve more traffic than one executor spanning all cores. Each
// pool worker constructs its ThreadEngine *inside* its own thread, so the worker thread
// itself becomes worker 0 of its partition's fork-join pool, pinned to the partition's
// first core.
//
// On multi-node (NUMA) hosts the plan is topology-aware (src/runtime/topology.h): no
// partition straddles a node boundary, each worker's arena is bound to its partition's
// home node, constant weights are replicated per node (model_registry), and the batcher
// dispatch is socket-affine — a batch prefers a worker on the node where the model's
// weights are hot, falling back across nodes rather than queueing. Single-node hosts
// get the exact legacy plan. With measured_tuning_partition the smallest slice the
// topology offers (HT siblings when present) is carved off the serving plan and runs
// MEASURED-mode re-tunes — real-hardware timings taken off the serving path, winners
// promoted into the shared TuningCache.
//
// Submit is thread-safe and non-blocking; results arrive through std::future. The
// admission queue is BOUNDED (BatchingOptions::queue_limit, plus an optional cap on
// aggregate in-flight arena bytes): under overload TrySubmit sheds with a typed verdict
// and a retry-after hint instead of queueing without limit — Stats().requests_shed and
// queue_limit report the admission behavior. Requests carry a priority lane
// (latency / throughput); the batcher serves the latency lane first. Per-request
// latency (submit → result, split per lane) and batching counters are available from
// Stats().
#ifndef NEOCPU_SRC_SERVE_INFERENCE_SERVER_H_
#define NEOCPU_SRC_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/partition.h"
#include "src/serve/dynamic_batcher.h"
#include "src/serve/model_registry.h"
#include "src/serve/serving_stats.h"

namespace neocpu {

struct ServerOptions {
  // Executor-pool width. <= 0 selects two executors when the host has at least two
  // cores (the paper's sweet spot for small-input traffic), else one.
  int num_executors = 0;
  // Cores split across the pool; <= 0 selects the physical core count.
  int total_workers = 0;
  // Pin pool threads to their partition's cores. Disable on oversubscribed hosts/CI.
  bool bind_threads = true;
  // Re-tune schedules per observed batch size in the background (see model_registry.h):
  // a first-use batch serves the rebound variant immediately and hot-swaps to the
  // per-batch-tuned variant when its re-tune lands. Re-tune threads run off the
  // executor partitions (pointed at the last partition's cores, unpinned).
  bool background_retune = true;
  int retune_workers = 1;
  // Carve a dedicated measured-mode tuning partition out of the serving plan: the
  // smallest slice the topology offers (one core's HT siblings when the host has them,
  // else the last cpu) runs background re-tunes in MEASURED cost mode, pinned, off the
  // serving path; winners are promoted into the shared TuningCache under kMeasured
  // keys. On a host too small to carve (one online cpu) serving keeps every core and
  // re-tunes fall back to the legacy unpinned analytic path (tuning_partition() is
  // null). Implies bind_threads semantics for the tuning slice only.
  bool measured_tuning_partition = false;
  BatchingOptions batching;
  // Per-node profiling across every registered model: one Run in `profile_sample_rate`
  // is timed node by node (0 = off; 1 = every Run). Snapshots surface per model in
  // Stats().per_model and via registry() entries. Keep the rate >= ~16 in production;
  // a sampled run pays two clock reads per node.
  std::uint32_t profile_sample_rate = 0;
  // Chrome-trace capture (obs/trace): request lifecycle instants/spans plus one span
  // per executed node. Borrowed; must outlive the server. Null = off.
  TraceRecorder* tracer = nullptr;
};

// Non-fatal Submit verdict: everything the wire front end turns into a typed error
// reply instead of a process death.
enum class SubmitStatus {
  kOk = 0,
  kUnknownModel,
  kShapeMismatch,    // rank or a dim differs from the model's sample_dims()
  kShedQueueFull,    // bounded admission queue is full — retry after retry_after_ms
  kShedArenaBytes,   // aggregate in-flight arena bytes would exceed the cap
  kShuttingDown,
};

const char* SubmitStatusName(SubmitStatus status);

struct SubmitOptions {
  RequestLane lane = RequestLane::kLatency;
};

// TrySubmit outcome: on kOk `result` holds the future; on a shed verdict
// retry_after_ms carries the backoff hint clients should honor.
struct SubmitTicket {
  SubmitStatus status = SubmitStatus::kShuttingDown;
  double retry_after_ms = 0.0;
  std::future<Tensor> result;

  bool ok() const { return status == SubmitStatus::kOk; }
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  ModelRegistry& registry() { return registry_; }
  // Convenience wrappers around registry().
  ModelEntry* RegisterModel(std::string name, CompiledModel model);
  ModelEntry* RegisterModelFromFile(std::string name, const std::string& path);

  // Enqueues one single-sample request against a registered model and returns the
  // future holding its output tensor. The input's dims must match the model's
  // sample_dims() exactly (leading dim 1); violations die with the mismatching axis,
  // and so does a shed (the bounded-admission path for in-process callers that cannot
  // handle backpressure is to size queue_limit for their load). Wire-facing callers
  // use TrySubmit, which never dies.
  std::future<Tensor> Submit(const std::string& model, Tensor input);

  // Bounded-admission Submit: validates the model and shape, charges the model's
  // planned arena footprint against the cap, and enqueues on the request's lane.
  // Returns a non-kOk status instead of dying on unknown models, shape mismatches,
  // overload, or shutdown. Thread-safe, non-blocking.
  SubmitTicket TrySubmit(const std::string& model, Tensor input,
                         SubmitOptions options = {});

  // Stops accepting requests, drains everything queued, joins the pool. Idempotent;
  // also run by the destructor.
  void Shutdown();

  ServerStats Stats() const;
  int num_executors() const { return num_executors_; }
  // The realized serving plan: one partition per pooled executor, node-aligned on
  // multi-node hosts (partition i backs worker i; workers beyond the plan timeshare).
  const std::vector<CorePartition>& partitions() const { return partitions_; }
  // The dedicated measured-mode tuning slice, or null when measured_tuning_partition
  // is off or the host is too small to carve one.
  const CorePartition* tuning_partition() const {
    return has_tuning_partition_ ? &tuning_partition_ : nullptr;
  }
  // NUMA nodes visible to the plan (1 on single-socket hosts).
  int num_nodes() const { return num_nodes_; }
  // The chrome-trace recorder this server was built with (null = tracing off).
  TraceRecorder* tracer() const { return options_.tracer; }

  // Blocks until every background per-batch re-tune has finished (tests; controlled
  // benchmarking of the fully-tuned steady state).
  void WaitForRetunes() { registry_.WaitForRetunes(); }

 private:
  void WorkerLoop(const CorePartition& partition, bool pooled);

  ModelRegistry registry_;
  DynamicBatcher batcher_;
  ServerOptions options_;
  int num_executors_ = 1;
  int num_nodes_ = 1;
  std::vector<CorePartition> partitions_;
  CorePartition tuning_partition_;
  bool has_tuning_partition_ = false;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batch_runs_{0};
  std::atomic<std::uint64_t> batched_samples_{0};
  std::atomic<std::int64_t> max_batch_{0};
  LatencyRecorder latency_;
  LatencyRecorder lane_latency_[kNumRequestLanes];
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_INFERENCE_SERVER_H_
