// Tensor stacking/splitting along the batch axis for the dynamic batcher.
//
// Requests enter the server as single-sample tensors ({1, C, H, W} for vision models);
// the batcher merges compatible requests into one {B, C, H, W} tensor, runs the
// batch-B rebound graph once, and splits the batched output back into per-request
// tensors. Both directions are plain contiguous copies because the batch axis is never
// blocked: even in NCHW[x]c layouts the leading physical dimension stays N.
#ifndef NEOCPU_SRC_SERVE_BATCH_UTIL_H_
#define NEOCPU_SRC_SERVE_BATCH_UTIL_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace neocpu {

// Concatenates `samples` along axis 0. Every sample must share dims (any leading dim,
// though serving always passes 1) and layout; the result's leading dim is the sum.
Tensor StackBatch(const std::vector<Tensor>& samples);

// Splits `batched` into `parts` tensors of equal leading dim (batched.dim(0) must be
// divisible by parts). Each part gets a freshly owned buffer, so a request's result
// stays valid after the batch tensor is released.
std::vector<Tensor> SplitBatch(const Tensor& batched, std::int64_t parts);

}  // namespace neocpu

#endif  // NEOCPU_SRC_SERVE_BATCH_UTIL_H_
