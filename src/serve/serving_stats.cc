#include "src/serve/serving_stats.h"

#include <algorithm>

#include "src/base/string_util.h"

namespace neocpu {
namespace {

// Nearest-rank percentile over a sorted sample vector.
double Percentile(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

}  // namespace

void LatencyRecorder::Record(double millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(millis);
    return;
  }
  // Classic reservoir step: sample i (1-based) replaces a random slot with probability
  // kMaxSamples / i, keeping the reservoir a uniform sample of the whole stream.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  const std::uint64_t slot = (z ^ (z >> 31)) % count_;
  if (slot < kMaxSamples) {
    samples_[static_cast<std::size_t>(slot)] = millis;
  }
}

LatencySnapshot LatencyRecorder::Snapshot() const {
  std::vector<double> samples;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples = samples_;
    total = count_;
  }
  LatencySnapshot snap;
  snap.count = static_cast<std::size_t>(total);
  if (samples.empty()) {
    return snap;
  }
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  snap.mean_ms = sum / static_cast<double>(samples.size());
  snap.p50_ms = Percentile(samples, 50.0);
  snap.p99_ms = Percentile(samples, 99.0);
  snap.p999_ms = Percentile(samples, 99.9);
  snap.max_ms = samples.back();
  return snap;
}

std::string ServerStats::ToString() const {
  std::string out = StrFormat(
      "submitted=%llu completed=%llu shed=%llu queue_depth=%zu/%zu batch_runs=%llu "
      "mean_batch=%.2f max_batch=%lld latency{p50=%.3fms p99=%.3fms p999=%.3fms "
      "mean=%.3fms} "
      "tuning{retunes=%llu/%llu deferred=%llu measured_promoted=%llu cache_hits=%llu "
      "cache_misses=%llu entries=%llu} "
      "topology{nodes=%d partitions=%d cross_node=%llu tuning_partition=%s}",
      static_cast<unsigned long long>(submitted), static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(requests_shed), queue_depth_now, queue_limit,
      static_cast<unsigned long long>(batch_runs), mean_batch_size,
      static_cast<long long>(max_batch_size), latency.p50_ms, latency.p99_ms,
      latency.p999_ms, latency.mean_ms, static_cast<unsigned long long>(retunes_completed),
      static_cast<unsigned long long>(retunes_started),
      static_cast<unsigned long long>(retunes_deferred),
      static_cast<unsigned long long>(measured_retunes_promoted),
      static_cast<unsigned long long>(tuning_cache.hits),
      static_cast<unsigned long long>(tuning_cache.misses),
      static_cast<unsigned long long>(tuning_cache.entries), num_nodes, num_partitions,
      static_cast<unsigned long long>(cross_node_dispatches),
      has_tuning_partition ? "yes" : "no");
  for (const ModelServeStats& model : per_model) {
    out += StrFormat("\n  model %s: retunes=%llu/%llu deferred=%llu", model.name.c_str(),
                     static_cast<unsigned long long>(model.retunes_completed),
                     static_cast<unsigned long long>(model.retunes_started),
                     static_cast<unsigned long long>(model.retunes_deferred));
    if (model.profiled_runs > 0) {
      out += StrFormat(" profiled{runs=%llu %.3f ms/run}",
                       static_cast<unsigned long long>(model.profiled_runs),
                       model.profile_ms_per_run);
    }
  }
  return out;
}

namespace {

std::string LatencyJson(const LatencySnapshot& l) {
  return StrFormat(
      "{\"count\": %zu, \"mean_ms\": %.6f, \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
      "\"p999_ms\": %.6f, \"max_ms\": %.6f}",
      l.count, l.mean_ms, l.p50_ms, l.p99_ms, l.p999_ms, l.max_ms);
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"submitted\": %llu,\n  \"completed\": %llu,\n",
                   static_cast<unsigned long long>(submitted),
                   static_cast<unsigned long long>(completed));
  out += StrFormat("  \"requests_shed\": %llu,\n",
                   static_cast<unsigned long long>(requests_shed));
  out += StrFormat("  \"requests_shed_queue_full\": %llu,\n",
                   static_cast<unsigned long long>(requests_shed_queue_full));
  out += StrFormat("  \"requests_shed_arena\": %llu,\n",
                   static_cast<unsigned long long>(requests_shed_arena));
  out += StrFormat("  \"queue_depth_now\": %zu,\n  \"queue_limit\": %zu,\n",
                   queue_depth_now, queue_limit);
  out += StrFormat("  \"arena_bytes_cap\": %zu,\n  \"inflight_arena_bytes\": %zu,\n",
                   arena_bytes_cap, inflight_arena_bytes);
  out += StrFormat("  \"batch_runs\": %llu,\n  \"mean_batch_size\": %.4f,\n",
                   static_cast<unsigned long long>(batch_runs), mean_batch_size);
  out += StrFormat("  \"max_batch_size\": %lld,\n",
                   static_cast<long long>(max_batch_size));
  out += "  \"latency\": " + LatencyJson(latency) + ",\n";
  out += "  \"lane_latency\": {\"latency\": " + LatencyJson(lane_latency[0]) +
         ", \"throughput\": " + LatencyJson(lane_latency[1]) + "},\n";
  out += StrFormat(
      "  \"retunes\": {\"started\": %llu, \"completed\": %llu, \"failed\": %llu, "
      "\"deferred\": %llu, \"measured_promoted\": %llu},\n",
      static_cast<unsigned long long>(retunes_started),
      static_cast<unsigned long long>(retunes_completed),
      static_cast<unsigned long long>(retunes_failed),
      static_cast<unsigned long long>(retunes_deferred),
      static_cast<unsigned long long>(measured_retunes_promoted));
  out += StrFormat(
      "  \"topology\": {\"nodes\": %d, \"partitions\": %d, "
      "\"cross_node_dispatches\": %llu, \"tuning_partition\": %s},\n",
      num_nodes, num_partitions,
      static_cast<unsigned long long>(cross_node_dispatches),
      has_tuning_partition ? "true" : "false");
  out += "  \"models\": [" +
         JoinMapped(per_model, ", ",
                    [](const ModelServeStats& m) { return "\"" + m.name + "\""; }) +
         "]\n";
  out += "}\n";
  return out;
}

}  // namespace neocpu
