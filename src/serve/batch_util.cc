#include "src/serve/batch_util.h"

#include <cstring>

#include "src/base/logging.h"

namespace neocpu {

Tensor StackBatch(const std::vector<Tensor>& samples) {
  NEOCPU_CHECK(!samples.empty()) << "StackBatch: no samples";
  const Tensor& first = samples[0];
  NEOCPU_CHECK_GE(first.ndim(), 1) << "StackBatch: scalar samples";
  std::int64_t total_batch = 0;
  for (const Tensor& s : samples) {
    NEOCPU_CHECK(s.dims().size() == first.dims().size()) << "StackBatch: rank mismatch";
    for (int axis = 1; axis < first.ndim(); ++axis) {
      NEOCPU_CHECK_EQ(s.dim(axis), first.dim(axis))
          << "StackBatch: sample dims mismatch at axis " << axis;
    }
    total_batch += s.dim(0);
  }
  std::vector<std::int64_t> out_dims = first.dims();
  out_dims[0] = total_batch;
  Tensor out = Tensor::Empty(out_dims, first.layout());
  float* dst = out.data();
  for (const Tensor& s : samples) {
    std::memcpy(dst, s.data(), s.SizeBytes());
    dst += s.NumElements();
  }
  return out;
}

std::vector<Tensor> SplitBatch(const Tensor& batched, std::int64_t parts) {
  NEOCPU_CHECK_GE(parts, 1);
  NEOCPU_CHECK_GE(batched.ndim(), 1) << "SplitBatch: scalar tensor";
  NEOCPU_CHECK_EQ(batched.dim(0) % parts, 0)
      << "SplitBatch: leading dim not divisible into " << parts << " parts";
  std::vector<std::int64_t> part_dims = batched.dims();
  part_dims[0] = batched.dim(0) / parts;
  const std::int64_t part_elems = batched.NumElements() / parts;
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(parts));
  const float* src = batched.data();
  for (std::int64_t p = 0; p < parts; ++p) {
    Tensor t = Tensor::Empty(part_dims, batched.layout());
    std::memcpy(t.data(), src + p * part_elems,
                static_cast<std::size_t>(part_elems) * sizeof(float));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace neocpu
